#include "dut/net/engine.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string>

#include "dut/obs/env.hpp"
#include "dut/obs/metrics.hpp"
#include "dut/obs/trace.hpp"

namespace dut::net {

void NodeContext::send(std::uint32_t neighbor, const Message& msg) {
  engine_->deliver(id_, neighbor, msg);
}

void NodeContext::broadcast(const Message& msg) {
  for (const std::uint32_t u : neighbors_) send(u, msg);
}

Engine::Engine(const Graph& graph, EngineConfig config)
    : graph_(graph), config_(config) {
  if (config_.model == Model::kCongest && config_.bandwidth_bits == 0) {
    throw std::invalid_argument("Engine: CONGEST needs a bandwidth budget");
  }
  const std::uint32_t k = graph_.num_nodes();
  edge_offset_.resize(k + 1);
  edge_offset_[0] = 0;
  for (std::uint32_t v = 0; v < k; ++v) {
    edge_offset_[v + 1] = edge_offset_[v] + graph_.degree(v);
  }
  sorted_adj_.resize(edge_offset_.back());
  for (std::uint32_t v = 0; v < k; ++v) {
    const auto neighbors = graph_.neighbors(v);
    std::copy(neighbors.begin(), neighbors.end(),
              sorted_adj_.begin() + static_cast<std::ptrdiff_t>(
                                        edge_offset_[v]));
    std::sort(sorted_adj_.begin() +
                  static_cast<std::ptrdiff_t>(edge_offset_[v]),
              sorted_adj_.begin() +
                  static_cast<std::ptrdiff_t>(edge_offset_[v + 1]));
  }
  last_sent_round_.assign(edge_offset_.back(), kNeverSent);
  pending_count_.assign(k, 0);
  inbox_offset_.assign(k + 1, 0);
  cursor_.assign(k, 0);
}

void Engine::trace_violation(std::string_view kind, const std::string& detail) {
  if (obs::enabled()) obs::counter("net.violations").add();
  if (active_sink_ != nullptr) {
    active_sink_->on_violation(current_round_, kind, detail);
    active_sink_->flush();
  }
}

void Engine::deliver(std::uint32_t from, std::uint32_t to, const Message& msg) {
  const std::size_t adj_begin = edge_offset_[from];
  const std::size_t adj_end = edge_offset_[from + 1];
  const auto first = sorted_adj_.begin() + static_cast<std::ptrdiff_t>(
                                               adj_begin);
  const auto last =
      sorted_adj_.begin() + static_cast<std::ptrdiff_t>(adj_end);
  const auto it = std::lower_bound(first, last, to);
  if (it == last || *it != to) {
    const std::string detail = "node " + std::to_string(from) +
                               " sent to non-neighbor " + std::to_string(to);
    trace_violation("protocol", detail);
    throw ProtocolViolation(detail);
  }
  const auto edge_index = static_cast<std::size_t>(it - first);
  std::uint64_t& guard = last_sent_round_[adj_begin + edge_index];
  if (guard == current_round_) {
    const std::string detail =
        "node " + std::to_string(from) + " sent twice to " +
        std::to_string(to) + " in round " + std::to_string(current_round_);
    trace_violation("protocol", detail);
    throw ProtocolViolation(detail);
  }
  if (halted_[to] && !fault_plan_.has_value()) {
    const std::string detail = "node " + std::to_string(from) +
                               " sent to halted node " + std::to_string(to);
    trace_violation("protocol", detail);
    throw ProtocolViolation(detail);
  }
  guard = current_round_;

  // The send attempt is traced before the bandwidth check so a transcript of
  // an aborted run still shows the offending message.
  if (active_sink_ != nullptr) {
    active_sink_->on_send(current_round_, from, to, msg.bits);
  }
  if (config_.model == Model::kCongest && msg.bits > config_.bandwidth_bits) {
    const std::string detail =
        "message of " + std::to_string(msg.bits) + " bits exceeds budget of " +
        std::to_string(config_.bandwidth_bits) + " (edge " +
        std::to_string(from) + " -> " + std::to_string(to) + ")";
    trace_violation("bandwidth", detail);
    throw BandwidthExceeded(detail);
  }

  ++metrics_.messages;
  metrics_.total_bits += msg.bits;
  metrics_.max_message_bits = std::max(metrics_.max_message_bits, msg.bits);
  if (const std::string breach = ledger_.on_send(current_round_, from,
                                                 msg.bits);
      !breach.empty()) {
    // Breach of a driver-declared budget stricter than the engine's hard
    // limits: soft by design — record and keep running so the full blast
    // radius lands in one transcript.
    if (obs::enabled()) obs::counter("net.budget.violations").add();
    trace_violation("budget", breach);
  }

  if (halted_[to]) {
    // Fault mode: the receiver halted or crashed; the message is lost on
    // the floor instead of being a protocol violation.
    ++metrics_.faults.expired;
    emit_fault("expire", from, to);
    return;
  }

  FaultDraw draw;
  if (message_faults_) {
    draw = resolve_faults(fault_plan_->rates_for(from, to), fault_key_,
                          current_round_, adj_begin + edge_index, 0);
  }
  if (draw.drop) {
    ++metrics_.faults.dropped;
    emit_fault("drop", from, to);
    return;
  }

  const auto fields = msg.fields();
  detail::ArenaRecord rec;
  rec.sender = from;
  rec.to = to;
  rec.num_fields = static_cast<std::uint32_t>(fields.size());
  rec.bits = msg.bits;
  // Delayed payloads go to the deferred slab, which survives round flips.
  std::vector<std::uint64_t>& payload =
      draw.delay ? deferred_payload_ : pending_payload_;
  rec.payload_begin = payload.size();
  payload.insert(payload.end(), fields.begin(), fields.end());
  if (draw.corrupt && rec.num_fields > 0) {
    // Corruption flips bits within the field's occupied width only: the
    // arena does not retain per-field declared widths, so this is the
    // strongest corruption that provably keeps the value wire-valid (a
    // corrupted field never exceeds the width its sender declared).
    std::uint64_t& slot =
        payload[rec.payload_begin + draw.corrupt_field % rec.num_fields];
    const int occupied = slot == 0 ? 1 : std::bit_width(slot);
    std::uint64_t mask = occupied >= 64
                             ? draw.corrupt_mask
                             : draw.corrupt_mask & ((1ULL << occupied) - 1);
    if (mask == 0) mask = 1;
    slot ^= mask;
    ++metrics_.faults.corrupted;
    emit_fault("corrupt", from, to);
  }
  if (draw.delay) {
    deferred_records_.push_back(
        {rec, current_round_ + 1 + draw.delay_rounds});
    ++metrics_.faults.delayed;
    emit_fault("delay", from, to);
  } else {
    pending_records_.push_back(rec);
    ++pending_count_[to];
  }
  if (draw.duplicate) {
    // The duplicate shares the original's payload range (and corruption)
    // and follows its delayed-or-immediate path.
    if (draw.delay) {
      deferred_records_.push_back(
          {rec, current_round_ + 1 + draw.delay_rounds});
    } else {
      pending_records_.push_back(rec);
      ++pending_count_[to];
    }
    ++metrics_.faults.duplicated;
    emit_fault("dup", from, to);
  }
}

void Engine::emit_fault(std::string_view kind, std::uint32_t from,
                        std::uint32_t to) {
  if (obs::enabled()) obs::counter("net.faults").add();
  if (active_sink_ != nullptr) {
    active_sink_->on_fault(current_round_, kind, from, to);
  }
}

void Engine::inject_deferred() {
  if (deferred_records_.empty()) return;
  std::size_t kept = 0;
  for (const DeferredRecord& d : deferred_records_) {
    if (d.due_round > current_round_) {
      deferred_records_[kept++] = d;
      continue;
    }
    if (halted_[d.rec.to]) {
      ++metrics_.faults.expired;
      emit_fault("expire", d.rec.sender, d.rec.to);
      continue;
    }
    detail::ArenaRecord rec = d.rec;
    rec.payload_begin = pending_payload_.size();
    const auto src = deferred_payload_.begin() +
                     static_cast<std::ptrdiff_t>(d.rec.payload_begin);
    pending_payload_.insert(pending_payload_.end(), src,
                            src + rec.num_fields);
    pending_records_.push_back(rec);
    ++pending_count_[rec.to];
  }
  deferred_records_.resize(kept);
  // The slab can only be reclaimed once nothing references it; the deferral
  // window is bounded by max_delay_rounds, so this happens regularly.
  if (deferred_records_.empty()) deferred_payload_.clear();
}

void Engine::flip_round() {
  // Delayed messages whose round has come join the scatter behind this
  // round's fresh sends (stable sort ⇒ fresh-before-delayed per inbox).
  if (fault_plan_.has_value()) inject_deferred();
  const std::uint32_t k = graph_.num_nodes();
  inbox_offset_[0] = 0;
  for (std::uint32_t v = 0; v < k; ++v) {
    inbox_offset_[v + 1] = inbox_offset_[v] + pending_count_[v];
  }
  std::copy(inbox_offset_.begin(), inbox_offset_.begin() + k,
            cursor_.begin());
  // The pending slab becomes the delivered slab; payload_begin offsets in
  // the records stay valid across the swap.
  std::swap(pending_payload_, delivered_payload_);
  delivered_records_.resize(pending_records_.size());
  for (const detail::ArenaRecord& rec : pending_records_) {
    delivered_records_[cursor_[rec.to]++] = rec;
  }
  pending_records_.clear();
  pending_payload_.clear();
  std::fill(pending_count_.begin(), pending_count_.end(), 0);
}

void Engine::run(const std::vector<NodeProgram*>& programs) {
  run(programs, config_.seed);
}

void Engine::run(const std::vector<NodeProgram*>& programs,
                 std::uint64_t seed) {
  const std::uint32_t k = graph_.num_nodes();
  if (programs.size() != k) {
    throw std::invalid_argument("Engine::run: one program per node required");
  }
  for (NodeProgram* const p : programs) {
    if (p == nullptr) {
      throw std::invalid_argument("Engine::run: null program");
    }
  }

  // Full round-state reset, preserving every buffer's capacity so repeated
  // runs on one engine stay allocation-free after warm-up.
  metrics_ = EngineMetrics{};
  current_round_ = 0;
  halted_.assign(k, false);
  pending_records_.clear();
  pending_payload_.clear();
  delivered_records_.clear();
  delivered_payload_.clear();
  std::fill(pending_count_.begin(), pending_count_.end(), 0);
  std::fill(last_sent_round_.begin(), last_sent_round_.end(), kNeverSent);
  // Deferred-delivery state must go too: a run aborted mid-flight (e.g. a
  // ProtocolViolation on a pooled engine) may have left delayed messages
  // queued, and replaying them into the next trial would corrupt it.
  deferred_records_.clear();
  deferred_payload_.clear();
  crash_cursor_ = 0;
  message_faults_ =
      fault_plan_.has_value() && fault_plan_->has_message_faults();
  fault_key_ = fault_plan_.has_value()
                   ? stats::SplitMix64(fault_plan_->salt()).next() ^
                         stats::SplitMix64(seed).next()
                   : 0;
  // The run's communication budget: a set_budget_spec override, else the
  // model limits the engine enforces anyway (CONGEST bandwidth + round cap,
  // LOCAL round cap) so the ledger meters without ever soft-violating.
  ledger_.begin_run(
      k, budget_spec_.has_value()
             ? *budget_spec_
             : (config_.model == Model::kCongest
                    ? obs::BudgetSpec::congest(config_.bandwidth_bits,
                                               config_.max_rounds)
                    : obs::BudgetSpec::local(config_.max_rounds)));

  // Resolve the trace sink for this run: an attached sink wins; otherwise —
  // unless set_env_trace(false) opted this engine out — DUT_TRACE names a
  // JSONL transcript (fresh per run, appended to the file). The writer lives
  // only for this run so the process-wide file lock it holds is released on
  // every exit path, including throws.
  std::unique_ptr<obs::JsonlTraceWriter> env_writer;
  active_sink_ = trace_sink_;
  if (active_sink_ == nullptr && env_trace_ && obs::enabled()) {
    if (const char* path = std::getenv("DUT_TRACE");
        path != nullptr && *path != '\0') {
      const std::uint64_t tail =
          obs::env_u64("DUT_TRACE_TAIL", 0, 1ULL << 32).value_or(0);
      env_writer = std::make_unique<obs::JsonlTraceWriter>(path, tail);
      active_sink_ = env_writer.get();
    }
  }
  trace_delivers_ =
      active_sink_ != nullptr &&
      obs::env_u64("DUT_TRACE_LEVEL", 1, 9).value_or(1) >= 2;

  const bool instrumented = obs::enabled();
  if (instrumented) obs::counter("net.runs").add();
  if (active_sink_ != nullptr) {
    obs::TraceRunInfo info;
    info.model = config_.model == Model::kCongest ? "congest" : "local";
    info.nodes = k;
    info.bandwidth_bits =
        config_.model == Model::kCongest ? config_.bandwidth_bits : 0;
    info.max_rounds = config_.max_rounds;
    info.seed = seed;
    info.level = trace_delivers_ ? 2 : 1;
    info.budget = ledger_.spec();
    info.annotations = run_annotations_;
    active_sink_->on_run_start(info);
  }

  rngs_.clear();
  rngs_.reserve(k);
  for (std::uint32_t v = 0; v < k; ++v) {
    rngs_.push_back(stats::derive_stream(seed, v));
  }

  std::uint32_t active = k;
  while (active > 0) {
    if (current_round_ >= config_.max_rounds) {
      const std::string detail = "protocol did not terminate within " +
                                 std::to_string(config_.max_rounds) +
                                 " rounds (" + std::to_string(active) +
                                 " nodes still active)";
      trace_violation("round_limit", detail);
      throw RoundLimitExceeded(detail);
    }
    // Deliver last round's sends.
    flip_round();

    // Crash-stop: node v executes rounds < r, so it is removed here, after
    // its round-r inbox materialized but before it could read it.
    if (fault_plan_.has_value()) {
      const auto& schedule = fault_plan_->crash_schedule();
      while (crash_cursor_ < schedule.size() &&
             schedule[crash_cursor_].first <= current_round_) {
        const std::uint32_t v = schedule[crash_cursor_].second;
        ++crash_cursor_;
        if (v >= k || halted_[v]) continue;
        halted_[v] = true;
        --active;
        ++metrics_.faults.crashes;
        emit_fault("crash", v, v);
        if (active_sink_ != nullptr) active_sink_->on_halt(current_round_, v);
      }
    }

    if (active_sink_ != nullptr) {
      active_sink_->on_round(current_round_, active);
      if (trace_delivers_) {
        for (std::uint32_t v = 0; v < k; ++v) {
          for (std::size_t i = inbox_offset_[v]; i < inbox_offset_[v + 1];
               ++i) {
            const detail::ArenaRecord& rec = delivered_records_[i];
            active_sink_->on_deliver(current_round_, rec.sender, v, rec.bits);
          }
        }
      }
    }
    const std::uint64_t messages_before = metrics_.messages;
    const std::uint64_t bits_before = metrics_.total_bits;

    for (std::uint32_t v = 0; v < k; ++v) {
      if (halted_[v]) continue;
      NodeContext ctx;
      ctx.engine_ = this;
      ctx.id_ = v;
      ctx.round_ = current_round_;
      ctx.neighbors_ = graph_.neighbors(v);
      ctx.inbox_ = InboxView(delivered_records_.data() + inbox_offset_[v],
                             inbox_offset_[v + 1] - inbox_offset_[v],
                             delivered_payload_.data());
      ctx.rng_ = &rngs_[v];
      bool halted_flag = false;
      ctx.halted_ = &halted_flag;
      programs[v]->on_round(ctx);
      if (halted_flag) {
        halted_[v] = true;
        --active;
        if (active_sink_ != nullptr) {
          active_sink_->on_halt(current_round_, v);
        }
        if (pending_count_[v] != 0 && !fault_plan_.has_value()) {
          // A same-round earlier neighbor already queued a message for a
          // node that has just halted: the protocol's termination is racy.
          // In fault mode this is routine (retransmissions race halts) and
          // the queued messages simply land in a dead inbox.
          const std::string detail = "node " + std::to_string(v) +
                                     " halted with queued incoming messages";
          trace_violation("protocol", detail);
          throw ProtocolViolation(detail);
        }
      }
    }
    if (instrumented) {
      static obs::Histogram& round_messages =
          obs::histogram("net.round.messages");
      static obs::Histogram& round_bits = obs::histogram("net.round.bits");
      round_messages.record(metrics_.messages - messages_before);
      round_bits.record(metrics_.total_bits - bits_before);
    }
    ++current_round_;
  }
  metrics_.rounds = current_round_;
  if (const std::string breach = ledger_.finish_run(metrics_.rounds);
      !breach.empty()) {
    if (obs::enabled()) obs::counter("net.budget.violations").add();
    trace_violation("budget", breach);
  }
  metrics_.budget = ledger_.usage();

  // Quiescence check: nothing may remain in flight after everyone halted.
  // Skipped in fault mode, where in-flight messages to halted nodes are the
  // expected debris of a degraded network; delayed messages that never came
  // due are accounted as expired.
  if (fault_plan_.has_value()) {
    for (const DeferredRecord& d : deferred_records_) {
      ++metrics_.faults.expired;
      emit_fault("expire", d.rec.sender, d.rec.to);
    }
    deferred_records_.clear();
    deferred_payload_.clear();
  } else if (!pending_records_.empty()) {
    const std::string detail = "messages in flight after global termination";
    trace_violation("protocol", detail);
    throw ProtocolViolation(detail);
  }

  if (instrumented) {
    obs::counter("net.rounds").add(metrics_.rounds);
    obs::counter("net.messages").add(metrics_.messages);
    obs::counter("net.bits").add(metrics_.total_bits);
    // Per-run budget figures, one histogram record per completed run; the
    // report's "budget" section is budget_from_snapshot() over these.
    if (config_.model == Model::kCongest) {
      static obs::Histogram& rounds_used =
          obs::histogram("net.congest.rounds");
      static obs::Histogram& rounds_limit =
          obs::histogram("net.congest.rounds_limit");
      static obs::Histogram& edge_bits =
          obs::histogram("net.congest.edge_bits");
      static obs::Histogram& edge_bits_limit =
          obs::histogram("net.congest.edge_bits_limit");
      static obs::Histogram& node_bits =
          obs::histogram("net.congest.node_bits");
      rounds_used.record(metrics_.rounds);
      rounds_limit.record(ledger_.spec().max_rounds);
      edge_bits.record(metrics_.max_message_bits);
      edge_bits_limit.record(ledger_.spec().bits_per_edge_round);
      node_bits.record(metrics_.budget.max_node_bits);
    } else {
      static obs::Histogram& rounds_used = obs::histogram("net.local.rounds");
      static obs::Histogram& rounds_limit =
          obs::histogram("net.local.rounds_limit");
      static obs::Histogram& node_bits = obs::histogram("net.local.node_bits");
      rounds_used.record(metrics_.rounds);
      rounds_limit.record(ledger_.spec().max_rounds);
      node_bits.record(metrics_.budget.max_node_bits);
    }
  }
  if (active_sink_ != nullptr) {
    obs::TraceRunTotals totals;
    totals.rounds = metrics_.rounds;
    totals.messages = metrics_.messages;
    totals.total_bits = metrics_.total_bits;
    totals.max_message_bits = metrics_.max_message_bits;
    active_sink_->on_run_end(totals);
    active_sink_->flush();
    active_sink_ = nullptr;
  }
}

}  // namespace dut::net
