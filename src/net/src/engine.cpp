#include "dut/net/engine.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string>

#include "dut/net/transport/inproc.hpp"
#include "dut/obs/env.hpp"
#include "dut/obs/metrics.hpp"
#include "dut/obs/trace.hpp"

namespace dut::net {

void NodeContext::send(std::uint32_t neighbor, const Message& msg) {
  engine_->deliver(id_, neighbor, msg);
}

void NodeContext::broadcast(const Message& msg) {
  for (const std::uint32_t u : neighbors_) send(u, msg);
}

Engine::Engine(const Graph& graph, EngineConfig config)
    : graph_(graph), config_(config) {
  if (config_.model == Model::kCongest && config_.bandwidth_bits == 0) {
    throw std::invalid_argument("Engine: CONGEST needs a bandwidth budget");
  }
  const std::uint32_t k = graph_.num_nodes();
  edge_offset_.resize(k + 1);
  edge_offset_[0] = 0;
  for (std::uint32_t v = 0; v < k; ++v) {
    edge_offset_[v + 1] = edge_offset_[v] + graph_.degree(v);
  }
  sorted_adj_.resize(edge_offset_.back());
  for (std::uint32_t v = 0; v < k; ++v) {
    const auto neighbors = graph_.neighbors(v);
    std::copy(neighbors.begin(), neighbors.end(),
              sorted_adj_.begin() + static_cast<std::ptrdiff_t>(
                                        edge_offset_[v]));
    std::sort(sorted_adj_.begin() +
                  static_cast<std::ptrdiff_t>(edge_offset_[v]),
              sorted_adj_.begin() +
                  static_cast<std::ptrdiff_t>(edge_offset_[v + 1]));
  }
  last_sent_round_.assign(edge_offset_.back(), kNeverSent);
  inproc_ = std::make_unique<InProcTransport>();
  transport_ = inproc_.get();
}

Engine::~Engine() = default;

void Engine::set_transport(Transport* transport) noexcept {
  transport_ = transport != nullptr ? transport : inproc_.get();
}

void Engine::trace_violation(std::string_view kind, const std::string& detail) {
  if (obs::enabled()) obs::counter("net.violations").add();
  if (active_sink_ != nullptr) {
    active_sink_->on_violation(current_round_, kind, detail);
    active_sink_->flush();
  }
}

void Engine::count_expired(std::uint32_t from, std::uint32_t to) {
  ++metrics_.faults.expired;
  emit_fault("expire", from, to);
}

void Engine::reject_remote_to_halted(std::uint32_t from, std::uint32_t to) {
  // Worded exactly like the sender-side strict check so a sharded run's
  // merged transcript matches the in-process one.
  const std::string detail = "node " + std::to_string(from) +
                             " sent to halted node " + std::to_string(to);
  trace_violation("protocol", detail);
  throw ProtocolViolation(detail);
}

void Engine::deliver(std::uint32_t from, std::uint32_t to, const Message& msg) {
  const std::size_t adj_begin = edge_offset_[from];
  const std::size_t adj_end = edge_offset_[from + 1];
  const auto first = sorted_adj_.begin() + static_cast<std::ptrdiff_t>(
                                               adj_begin);
  const auto last =
      sorted_adj_.begin() + static_cast<std::ptrdiff_t>(adj_end);
  const auto it = std::lower_bound(first, last, to);
  if (it == last || *it != to) {
    const std::string detail = "node " + std::to_string(from) +
                               " sent to non-neighbor " + std::to_string(to);
    trace_violation("protocol", detail);
    throw ProtocolViolation(detail);
  }
  const auto edge_index = static_cast<std::size_t>(it - first);
  std::uint64_t& guard = last_sent_round_[adj_begin + edge_index];
  if (guard == current_round_) {
    const std::string detail =
        "node " + std::to_string(from) + " sent twice to " +
        std::to_string(to) + " in round " + std::to_string(current_round_);
    trace_violation("protocol", detail);
    throw ProtocolViolation(detail);
  }
  // Sharded caveat: halted_ only tracks this rank's shard, so a strict-mode
  // send to a halted *remote* node passes here and is rejected by the owning
  // rank at the delivery boundary instead (reject_remote_to_halted).
  if (halted_[to] && !fault_plan_.has_value()) {
    const std::string detail = "node " + std::to_string(from) +
                               " sent to halted node " + std::to_string(to);
    trace_violation("protocol", detail);
    throw ProtocolViolation(detail);
  }
  guard = current_round_;

  // The send attempt is traced before the bandwidth check so a transcript of
  // an aborted run still shows the offending message.
  if (active_sink_ != nullptr) {
    active_sink_->on_send(current_round_, from, to, msg.bits);
  }
  if (config_.model == Model::kCongest && msg.bits > config_.bandwidth_bits) {
    const std::string detail =
        "message of " + std::to_string(msg.bits) + " bits exceeds budget of " +
        std::to_string(config_.bandwidth_bits) + " (edge " +
        std::to_string(from) + " -> " + std::to_string(to) + ")";
    trace_violation("bandwidth", detail);
    throw BandwidthExceeded(detail);
  }

  ++metrics_.messages;
  metrics_.total_bits += msg.bits;
  metrics_.max_message_bits = std::max(metrics_.max_message_bits, msg.bits);
  if (const std::string breach = ledger_.on_send(current_round_, from,
                                                 msg.bits);
      !breach.empty()) {
    // Breach of a driver-declared budget stricter than the engine's hard
    // limits: soft by design — record and keep running so the full blast
    // radius lands in one transcript.
    if (obs::enabled()) obs::counter("net.budget.violations").add();
    trace_violation("budget", breach);
  }

  if (halted_[to]) {
    // Fault mode: the receiver halted or crashed; the message is lost on
    // the floor instead of being a protocol violation.
    ++metrics_.faults.expired;
    emit_fault("expire", from, to);
    return;
  }

  FaultDraw draw;
  if (message_faults_) {
    draw = resolve_faults(fault_plan_->rates_for(from, to), fault_key_,
                          current_round_, adj_begin + edge_index, 0);
  }
  if (draw.drop) {
    ++metrics_.faults.dropped;
    emit_fault("drop", from, to);
    return;
  }

  std::span<const std::uint64_t> fields = msg.fields();
  detail::ArenaRecord rec;
  rec.sender = from;
  rec.to = to;
  rec.num_fields = static_cast<std::uint32_t>(fields.size());
  rec.bits = msg.bits;
  if (draw.corrupt && rec.num_fields > 0) {
    // Corruption is staged in an engine-owned scratch copy before the
    // transport takes the payload; it flips bits within the field's occupied
    // width only: the arena does not retain per-field declared widths, so
    // this is the strongest corruption that provably keeps the value
    // wire-valid (a corrupted field never exceeds the width its sender
    // declared).
    corrupt_scratch_.assign(fields.begin(), fields.end());
    std::uint64_t& slot =
        corrupt_scratch_[draw.corrupt_field % rec.num_fields];
    const int occupied = slot == 0 ? 1 : std::bit_width(slot);
    std::uint64_t mask = occupied >= 64
                             ? draw.corrupt_mask
                             : draw.corrupt_mask & ((1ULL << occupied) - 1);
    if (mask == 0) mask = 1;
    slot ^= mask;
    fields = corrupt_scratch_;
    ++metrics_.faults.corrupted;
    emit_fault("corrupt", from, to);
  }
  if (draw.delay) {
    transport_->enqueue_delayed(rec, fields,
                                current_round_ + 1 + draw.delay_rounds,
                                draw.duplicate);
    ++metrics_.faults.delayed;
    emit_fault("delay", from, to);
  } else {
    transport_->enqueue(rec, fields, draw.duplicate);
  }
  if (draw.duplicate) {
    // The duplicate shares the original's payload range (and corruption)
    // and follows its delayed-or-immediate path.
    ++metrics_.faults.duplicated;
    emit_fault("dup", from, to);
  }
}

void Engine::emit_fault(std::string_view kind, std::uint32_t from,
                        std::uint32_t to) {
  if (obs::enabled()) obs::counter("net.faults").add();
  if (active_sink_ != nullptr) {
    active_sink_->on_fault(current_round_, kind, from, to);
  }
}

void Engine::run(const std::vector<NodeProgram*>& programs) {
  run(programs, config_.seed);
}

void Engine::run(const std::vector<NodeProgram*>& programs,
                 std::uint64_t seed) {
  const std::uint32_t k = graph_.num_nodes();
  if (programs.size() != k) {
    throw std::invalid_argument("Engine::run: one program per node required");
  }
  for (NodeProgram* const p : programs) {
    if (p == nullptr) {
      throw std::invalid_argument("Engine::run: null program");
    }
  }
  const auto [shard_first, shard_last] = transport_->shard(k);

  // Full round-state reset, preserving every buffer's capacity so repeated
  // runs on one engine stay allocation-free after warm-up. The transport
  // resets its own delivery buffers (including any deferred messages a run
  // aborted mid-flight left queued) in begin_run.
  metrics_ = EngineMetrics{};
  current_round_ = 0;
  halted_.assign(k, false);
  halt_key_.assign(k, kNeverHalted);
  std::fill(last_sent_round_.begin(), last_sent_round_.end(), kNeverSent);
  transport_->begin_run(k, fault_plan_.has_value(), *this);
  crash_cursor_ = 0;
  message_faults_ =
      fault_plan_.has_value() && fault_plan_->has_message_faults();
  fault_key_ = fault_plan_.has_value()
                   ? stats::SplitMix64(fault_plan_->salt()).next() ^
                         stats::SplitMix64(seed).next()
                   : 0;
  // The run's communication budget: a set_budget_spec override, else the
  // model limits the engine enforces anyway (CONGEST bandwidth + round cap,
  // LOCAL round cap) so the ledger meters without ever soft-violating.
  ledger_.begin_run(
      k, budget_spec_.has_value()
             ? *budget_spec_
             : (config_.model == Model::kCongest
                    ? obs::BudgetSpec::congest(config_.bandwidth_bits,
                                               config_.max_rounds)
                    : obs::BudgetSpec::local(config_.max_rounds)));

  // Resolve the trace sink for this run: an attached sink wins; otherwise —
  // unless set_env_trace(false) opted this engine out — DUT_TRACE names a
  // JSONL transcript (fresh per run, appended to the file). Sharded
  // transports suffix the path so every rank writes its own shard. The
  // writer lives only for this run so the process-wide file lock it holds is
  // released on every exit path, including throws.
  std::unique_ptr<obs::JsonlTraceWriter> env_writer;
  active_sink_ = trace_sink_;
  if (active_sink_ == nullptr && env_trace_ && obs::enabled()) {
    if (const char* path = std::getenv("DUT_TRACE");
        path != nullptr && *path != '\0') {
      const std::uint64_t tail =
          obs::env_u64("DUT_TRACE_TAIL", 0, 1ULL << 32).value_or(0);
      env_writer = std::make_unique<obs::JsonlTraceWriter>(
          std::string(path) + transport_->trace_suffix(), tail);
      active_sink_ = env_writer.get();
    }
  }
  trace_delivers_ =
      active_sink_ != nullptr &&
      obs::env_u64("DUT_TRACE_LEVEL", 1, 9).value_or(1) >= 2;

  const bool instrumented = obs::enabled();
  if (instrumented) obs::counter("net.runs").add();
  if (active_sink_ != nullptr) {
    obs::TraceRunInfo info;
    info.model = config_.model == Model::kCongest ? "congest" : "local";
    info.nodes = k;
    info.bandwidth_bits =
        config_.model == Model::kCongest ? config_.bandwidth_bits : 0;
    info.max_rounds = config_.max_rounds;
    info.seed = seed;
    info.level = trace_delivers_ ? 2 : 1;
    info.budget = ledger_.spec();
    info.annotations = run_annotations_;
    active_sink_->on_run_start(info);
  }

  // Every rank derives all k streams (not just its shard's) so stream
  // identity is a function of (seed, node id) alone.
  rngs_.clear();
  rngs_.reserve(k);
  for (std::uint32_t v = 0; v < k; ++v) {
    rngs_.push_back(stats::derive_stream(seed, v));
  }

  // `local_active` counts this shard's live nodes; `active` is the all-rank
  // sum (identical: in-process the transport's sync is the identity). The
  // sync points are fixed — once before the loop, once after the crash
  // block, once after execution — so every rank runs the same sequence and
  // a step counter suffices to pair the exchanges.
  std::uint64_t local_active = shard_last - shard_first;
  std::uint64_t active = transport_->sync_active(local_active);
  try {
    while (active > 0) {
      if (current_round_ >= config_.max_rounds) {
        const std::string detail = "protocol did not terminate within " +
                                   std::to_string(config_.max_rounds) +
                                   " rounds (" + std::to_string(active) +
                                   " nodes still active)";
        trace_violation("round_limit", detail);
        throw RoundLimitExceeded(detail);
      }
      // Deliver last round's sends.
      transport_->flip_round(current_round_);

      // Crash-stop: node v executes rounds < r, so it is removed here, after
      // its round-r inbox materialized but before it could read it.
      if (fault_plan_.has_value()) {
        const auto& schedule = fault_plan_->crash_schedule();
        while (crash_cursor_ < schedule.size() &&
               schedule[crash_cursor_].first <= current_round_) {
          const std::uint32_t v = schedule[crash_cursor_].second;
          ++crash_cursor_;
          if (v >= k || v < shard_first || v >= shard_last || halted_[v]) {
            continue;
          }
          halted_[v] = true;
          halt_key_[v] = halt_key_crash(current_round_);
          --local_active;
          ++metrics_.faults.crashes;
          emit_fault("crash", v, v);
          if (active_sink_ != nullptr) {
            active_sink_->on_halt(current_round_, v);
          }
        }
      }
      active = transport_->sync_active(local_active);

      if (active_sink_ != nullptr) {
        active_sink_->on_round(current_round_, active);
        if (trace_delivers_) {
          for (std::uint32_t v = shard_first; v < shard_last; ++v) {
            for (const MessageView m : transport_->inbox(v)) {
              active_sink_->on_deliver(current_round_, m.sender, v, m.bits);
            }
          }
        }
      }
      const std::uint64_t messages_before = metrics_.messages;
      const std::uint64_t bits_before = metrics_.total_bits;

      for (std::uint32_t v = shard_first; v < shard_last; ++v) {
        if (halted_[v]) continue;
        NodeContext ctx;
        ctx.engine_ = this;
        ctx.id_ = v;
        ctx.round_ = current_round_;
        ctx.neighbors_ = graph_.neighbors(v);
        ctx.inbox_ = transport_->inbox(v);
        ctx.rng_ = &rngs_[v];
        bool halted_flag = false;
        ctx.halted_ = &halted_flag;
        programs[v]->on_round(ctx);
        if (halted_flag) {
          halted_[v] = true;
          halt_key_[v] = halt_key_voluntary(current_round_, v);
          --local_active;
          if (active_sink_ != nullptr) {
            active_sink_->on_halt(current_round_, v);
          }
          if (transport_->pending_to(v) != 0 && !fault_plan_.has_value()) {
            // A same-round earlier neighbor already queued a message for a
            // node that has just halted: the protocol's termination is racy.
            // In fault mode this is routine (retransmissions race halts) and
            // the queued messages simply land in a dead inbox.
            const std::string detail =
                "node " + std::to_string(v) +
                " halted with queued incoming messages";
            trace_violation("protocol", detail);
            throw ProtocolViolation(detail);
          }
        }
      }
      if (instrumented) {
        // Shard-local by construction: a sharded run's per-round histograms
        // cover this rank's sends only (the run_end totals are global).
        static obs::Histogram& round_messages =
            obs::histogram("net.round.messages");
        static obs::Histogram& round_bits = obs::histogram("net.round.bits");
        round_messages.record(metrics_.messages - messages_before);
        round_bits.record(metrics_.total_bits - bits_before);
      }
      ++current_round_;
      active = transport_->sync_active(local_active);
    }
    metrics_.rounds = current_round_;
    if (const std::string breach = ledger_.finish_run(metrics_.rounds);
        !breach.empty()) {
      if (obs::enabled()) obs::counter("net.budget.violations").add();
      trace_violation("budget", breach);
    }
    metrics_.budget = ledger_.usage();

    // Quiescence check: nothing may remain in flight after everyone halted.
    // Skipped in fault mode, where in-flight messages to halted nodes are
    // the expected debris of a degraded network; delayed messages that never
    // came due are accounted as expired (settle_run).
    if (fault_plan_.has_value()) {
      transport_->settle_run(current_round_);
    } else if (transport_->has_undelivered()) {
      const std::string detail = "messages in flight after global termination";
      trace_violation("protocol", detail);
      throw ProtocolViolation(detail);
    }
    // Fold per-rank tallies into the global figures every rank reports
    // identically (identity in-process).
    transport_->reduce_metrics(metrics_);
  } catch (const ProtocolViolation&) {
    transport_->abort_run(TransportAbortCode::kProtocolViolation);
    throw;
  } catch (const BandwidthExceeded&) {
    transport_->abort_run(TransportAbortCode::kBandwidthExceeded);
    throw;
  } catch (const RoundLimitExceeded&) {
    transport_->abort_run(TransportAbortCode::kRoundLimitExceeded);
    throw;
  } catch (const TransportAborted&) {
    // A peer already published the abort; just unwind.
    throw;
  } catch (...) {
    transport_->abort_run(TransportAbortCode::kOther);
    throw;
  }

  if (instrumented) {
    obs::counter("net.rounds").add(metrics_.rounds);
    obs::counter("net.messages").add(metrics_.messages);
    obs::counter("net.bits").add(metrics_.total_bits);
    // Per-run budget figures, one histogram record per completed run; the
    // report's "budget" section is budget_from_snapshot() over these. A
    // sharded run records the post-reduction (global) figures, so the
    // section matches the in-process run bit for bit.
    if (config_.model == Model::kCongest) {
      static obs::Histogram& rounds_used =
          obs::histogram("net.congest.rounds");
      static obs::Histogram& rounds_limit =
          obs::histogram("net.congest.rounds_limit");
      static obs::Histogram& edge_bits =
          obs::histogram("net.congest.edge_bits");
      static obs::Histogram& edge_bits_limit =
          obs::histogram("net.congest.edge_bits_limit");
      static obs::Histogram& node_bits =
          obs::histogram("net.congest.node_bits");
      rounds_used.record(metrics_.rounds);
      rounds_limit.record(ledger_.spec().max_rounds);
      edge_bits.record(metrics_.max_message_bits);
      edge_bits_limit.record(ledger_.spec().bits_per_edge_round);
      node_bits.record(metrics_.budget.max_node_bits);
    } else {
      static obs::Histogram& rounds_used = obs::histogram("net.local.rounds");
      static obs::Histogram& rounds_limit =
          obs::histogram("net.local.rounds_limit");
      static obs::Histogram& node_bits = obs::histogram("net.local.node_bits");
      rounds_used.record(metrics_.rounds);
      rounds_limit.record(ledger_.spec().max_rounds);
      node_bits.record(metrics_.budget.max_node_bits);
    }
  }
  if (active_sink_ != nullptr) {
    obs::TraceRunTotals totals;
    totals.rounds = metrics_.rounds;
    totals.messages = metrics_.messages;
    totals.total_bits = metrics_.total_bits;
    totals.max_message_bits = metrics_.max_message_bits;
    active_sink_->on_run_end(totals);
    active_sink_->flush();
    active_sink_ = nullptr;
  }
}

}  // namespace dut::net
