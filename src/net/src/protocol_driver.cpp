#include "dut/net/protocol_driver.hpp"

namespace dut::net {

ProtocolDriver::ProtocolDriver(const Graph& graph, EngineConfig base_config)
    : graph_(graph), base_config_(base_config) {}

ProtocolDriver::Lease ProtocolDriver::acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.empty()) {
    pool_.push_back(std::make_unique<State>(graph_, base_config_));
    idle_.push_back(pool_.back().get());
  }
  State* state = idle_.back();
  idle_.pop_back();
  if (fault_plan_.has_value()) {
    state->engine.set_fault_plan(*fault_plan_);
  } else {
    state->engine.clear_fault_plan();
  }
  return Lease(this, state);
}

void ProtocolDriver::release(State* state) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(state);
}

}  // namespace dut::net
