#include "dut/net/protocol_driver.hpp"

#include <stdexcept>

namespace dut::net {

ProtocolDriver::ProtocolDriver(const Graph& graph, EngineConfig base_config)
    : graph_(graph), base_config_(base_config) {}

void ProtocolDriver::set_transport(Transport* transport) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.size() != pool_.size()) {
    throw std::logic_error(
        "ProtocolDriver::set_transport: engines are leased");
  }
  transport_ = transport;
  // A transport serves one engine at a time, so the pool collapses to a
  // single engine; trials over it must run sequentially.
  for (const std::unique_ptr<State>& state : pool_) {
    state->engine.set_transport(transport_);
  }
}

ProtocolDriver::Lease ProtocolDriver::acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.empty()) {
    if (transport_ != nullptr && !pool_.empty()) {
      throw std::logic_error(
          "ProtocolDriver::acquire: a driver with an attached transport is "
          "single-lease; run trials sequentially");
    }
    pool_.push_back(std::make_unique<State>(graph_, base_config_));
    idle_.push_back(pool_.back().get());
    pool_.back()->engine.set_transport(transport_);
  }
  State* state = idle_.back();
  idle_.pop_back();
  if (fault_plan_.has_value()) {
    state->engine.set_fault_plan(*fault_plan_);
  } else {
    state->engine.clear_fault_plan();
  }
  return Lease(this, state);
}

void ProtocolDriver::release(State* state) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(state);
}

}  // namespace dut::net
