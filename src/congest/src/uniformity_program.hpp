#pragma once

// Private shared internals of the congest uniformity runners: the per-node
// test program and the deterministic per-trial derivations (external ids,
// message widths, replay annotations). Both the single-process entry points
// (uniformity.cpp) and the sharded multi-rank runner (sharded.cpp) build
// trials from exactly these pieces — that shared construction, driven only
// by (plan, graph, seed), is what makes a sharded trial's programs
// bit-identical to the in-process ones.

#include <cstdio>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "dut/congest/uniformity.hpp"
#include "dut/stats/rng.hpp"

namespace dut::congest::detail {

using Annotations = std::vector<std::pair<std::string, std::string>>;

/// %.17g round-trips doubles exactly, so replay metadata regenerates
/// byte-identically from the parsed-back values.
inline std::string format_param(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

inline const char* tail_bound_name(core::TailBound bound) {
  return bound == core::TailBound::kChernoff ? "chernoff" : "exact";
}

/// Replay preamble for a uniform-counts congest run: everything dut_replay
/// needs to rebuild the plan, setup and sampler and re-run this seed.
/// Heterogeneous runs get no annotations (counts have no compact spec).
inline Annotations congest_annotations(const CongestPlan& plan,
                                       const net::Graph& graph,
                                       const PackagingResilience& schedule,
                                       const core::AliasSampler& sampler,
                                       const net::FaultPlan* faults) {
  Annotations ann;
  ann.emplace_back("proto", "congest_uniformity");
  ann.emplace_back("topo", graph.spec());
  ann.emplace_back("dist", sampler.spec());
  ann.emplace_back("n", std::to_string(plan.n));
  ann.emplace_back("eps", format_param(plan.epsilon));
  ann.emplace_back("p", format_param(plan.p));
  ann.emplace_back("s0", std::to_string(plan.samples_per_node));
  ann.emplace_back("bound", tail_bound_name(plan.bound));
  if (schedule.enabled) {
    ann.emplace_back("retx", std::to_string(schedule.retransmits));
    ann.emplace_back("quorum", std::to_string(schedule.quorum));
  }
  if (faults != nullptr) {
    ann.emplace_back("faults", faults->spec());
  }
  return ann;
}

inline MessageWidths widths_for(std::uint64_t n, std::uint32_t k) {
  return MessageWidths{net::bits_for(k), net::bits_for(n),
                       net::bits_for(static_cast<std::uint64_t>(k) + 1)};
}

/// Deterministic permutation of {0..k-1} used as external ids, so leader
/// election runs on arbitrary identifiers as in the paper.
inline std::vector<std::uint64_t> external_ids(std::uint32_t k,
                                               std::uint64_t seed) {
  std::vector<std::uint64_t> ids(k);
  std::iota(ids.begin(), ids.end(), 0);
  stats::Xoshiro256 rng = stats::derive_stream(seed, 0x1D5);
  for (std::uint32_t i = k; i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.below(i)]);
  }
  return ids;
}

/// Virtual-node tester: each package of tau tokens is fed to the
/// single-collision tester; the report is the count of rejecting packages
/// and the root compares the network total against the threshold. In
/// resilient mode the root additionally requires (a) `quorum` nodes'
/// coverage and (b) a consistent token mass: the reported formed-package
/// count must account for the quorum's tokens, up to the remainder each
/// packaging site may legitimately drop. Without (b), in-flight token loss
/// (dropped or corrupt-discarded kToken messages) would silently shrink the
/// reject tally while node coverage stays high — an accept bias. Either
/// shortfall rejects (one-sided soundness keeps this safe).
class UniformityTestProgram : public TokenPackagingProgram {
 public:
  UniformityTestProgram(std::uint64_t external_id,
                        std::vector<std::uint64_t> tokens,
                        const CongestPlan& plan, MessageWidths widths,
                        PackagingResilience resil = {})
      : TokenPackagingProgram(external_id, std::move(tokens), plan.tau,
                              widths, resil),
        plan_(&plan) {}

  /// Root only, resilient mode: whether coverage reached the quorum when
  /// the verdict was decided.
  bool quorum_met() const noexcept { return quorum_met_; }

 protected:
  std::uint64_t local_report(net::NodeContext&) override {
    std::uint64_t rejecting = 0;
    for (const auto& package : packages()) {
      if (core::has_collision(package, plan_->n)) ++rejecting;
    }
    return rejecting;
  }

  std::uint64_t decide_at_root(std::uint64_t total) override {
    return total >= plan_->threshold ? 1 : 0;
  }

  std::uint64_t decide_with_quorum(std::uint64_t total, std::uint64_t covered,
                                   std::uint64_t formed) override {
    // Token-mass consistency: the quorum's tokens number quorum * s0 (s0 is
    // the per-node average for heterogeneous counts), and every packaging
    // site — the root plus up to depth_budget forced packagers on a root
    // path — may drop a remainder of at most tau - 1. Anything missing
    // beyond that slack means tokens were lost in flight, which dilutes the
    // collision statistics toward acceptance; reject instead.
    const std::uint64_t slack =
        (resilience().depth_budget + 1) * (plan_->tau - 1);
    quorum_met_ =
        covered >= resilience().quorum &&
        formed * plan_->tau + slack >=
            resilience().quorum * plan_->samples_per_node;
    if (!quorum_met_) return 1;
    return decide_at_root(total);
  }

 private:
  const CongestPlan* plan_;
  bool quorum_met_ = false;
};

}  // namespace dut::congest::detail
