#include "dut/congest/token_packaging.hpp"

#include <algorithm>
#include <stdexcept>

#include "dut/stats/rng.hpp"

namespace dut::congest {

std::uint64_t packaging_checksum(const std::uint64_t* fields,
                                 std::size_t count) noexcept {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < count; ++i) {
    h = stats::SplitMix64(h ^ fields[i]).next();
  }
  return h & 0xF;
}

TokenPackagingProgram::TokenPackagingProgram(std::uint64_t external_id,
                                             std::uint64_t token,
                                             std::uint64_t tau,
                                             MessageWidths widths)
    : TokenPackagingProgram(external_id,
                            std::vector<std::uint64_t>{token}, tau, widths) {}

TokenPackagingProgram::TokenPackagingProgram(
    std::uint64_t external_id, std::vector<std::uint64_t> tokens,
    std::uint64_t tau, MessageWidths widths)
    : TokenPackagingProgram(external_id, std::move(tokens), tau, widths,
                            PackagingResilience{}) {}

TokenPackagingProgram::TokenPackagingProgram(
    std::uint64_t external_id, std::vector<std::uint64_t> tokens,
    std::uint64_t tau, MessageWidths widths, PackagingResilience resil)
    : my_external_id_(external_id),
      own_tokens_(std::move(tokens)),
      tau_(tau),
      widths_(widths),
      resil_(resil),
      best_(external_id) {
  if (tau == 0) {
    throw std::invalid_argument("TokenPackagingProgram: tau must be >= 1");
  }
  if (own_tokens_.empty()) {
    throw std::invalid_argument(
        "TokenPackagingProgram: node must hold at least one token");
  }
  if (resil_.enabled &&
      (resil_.deadline == 0 || resil_.seq_bits == 0 ||
       resil_.leader_timeout < resil_.phase1_timeout ||
       resil_.package_round <= resil_.leader_timeout ||
       resil_.force_package_round <= resil_.package_round ||
       resil_.deadline <= resil_.report_base)) {
    throw std::invalid_argument(
        "TokenPackagingProgram: resilience schedule not resolved (rounds "
        "must be 0 < phase1_timeout <= leader_timeout < package_round < "
        "force_package_round <= report_base < deadline)");
  }
}

net::Message TokenPackagingProgram::make(Tag tag) const {
  net::Message msg;
  msg.push_field(static_cast<std::uint64_t>(tag), 3);
  return msg;
}

std::size_t TokenPackagingProgram::neighbor_index(net::NodeContext& ctx,
                                                  std::uint32_t id) {
  const auto neighbors = ctx.neighbors();
  const auto it = std::find(neighbors.begin(), neighbors.end(), id);
  if (it == neighbors.end()) {
    throw std::logic_error("token packaging: message from non-neighbor");
  }
  return static_cast<std::size_t>(it - neighbors.begin());
}

void TokenPackagingProgram::emit(net::NodeContext& ctx, std::uint32_t to,
                                 net::Message msg) {
  if (!resil_.enabled) {
    ctx.send(to, msg);
    return;
  }
  // Stamp the wire trailer and load the retransmission slot: the first copy
  // leaves this round via flush_slots; later copies fill idle rounds until a
  // newer message to the same neighbor supersedes them.
  const std::size_t i = neighbor_index(ctx, to);
  msg.push_field(++seq_out_[i], resil_.seq_bits);
  const auto stamped = msg.fields();
  msg.push_field(packaging_checksum(stamped.data(), stamped.size()), 4);
  slot_msg_[i] = std::move(msg);
  slot_copies_[i] = static_cast<std::uint32_t>(1 + resil_.retransmits);
}

void TokenPackagingProgram::flush_slots(net::NodeContext& ctx) {
  if (slot_copies_.empty()) return;
  const auto neighbors = ctx.neighbors();
  for (std::size_t i = 0; i < slot_copies_.size(); ++i) {
    if (slot_copies_[i] == 0) continue;
    ctx.send(neighbors[i], slot_msg_[i]);
    --slot_copies_[i];
  }
}

void TokenPackagingProgram::on_round(net::NodeContext& ctx) {
  if (responded_.empty() && ctx.degree() > 0) {
    responded_.assign(ctx.degree(), false);
  }
  if (resil_.enabled && slot_copies_.empty() && ctx.degree() > 0) {
    seq_out_.assign(ctx.degree(), 0);
    last_seq_in_.assign(ctx.degree(), 0);
    slot_msg_.resize(ctx.degree());
    slot_copies_.assign(ctx.degree(), 0);
  }

  if (!done_) process_inbox(ctx);
  if (!done_) {
    if (!started_) phase_one(ctx);
    if (resil_.enabled && !done_) apply_timeouts(ctx);
    if (started_ && !done_) {
      upward_slot(ctx);
      try_package(ctx);
      // Root termination: verdict once the whole tree has reported.
      if (parent_ == kNoParent && packaged_ && !report_sent_ &&
          reports_received_ == children_.size()) {
        report_sent_ = true;
        decide_as_root(ctx);
      }
    }
  }
  if (resil_.enabled) {
    flush_slots(ctx);
    if (done_) {
      // Deferred halt: keep draining verdict retransmissions first.
      const bool drained =
          std::all_of(slot_copies_.begin(), slot_copies_.end(),
                      [](std::uint32_t c) { return c == 0; });
      if (drained ||
          ctx.round() + 1 >= resil_.deadline + resil_.retransmits + 4) {
        ctx.halt();
      }
    }
  }
}

void TokenPackagingProgram::process_inbox(net::NodeContext& ctx) {
  for (const net::MessageView msg : ctx.inbox()) {
    if (resil_.enabled) {
      // Wire validation: [tag, payload..., seq, checksum]. Anything that
      // fails the checksum, names an unknown tag, has the wrong shape for
      // its tag, or repeats a sequence number is dropped on the floor.
      const auto fields = msg.fields();
      const std::size_t nf = fields.size();
      if (nf < 3 ||
          packaging_checksum(fields.data(), nf - 1) != fields[nf - 1]) {
        ++corrupt_discards_;
        continue;
      }
      const std::uint64_t tag = fields[0];
      static constexpr std::size_t kExpectedFields[] = {
          5,  // kCandidate: tag, id, depth, seq, ck
          4,  // kAck: tag, id, seq, ck
          3,  // kStart: tag, seq, ck
          4,  // kCValue: tag, c, seq, ck
          4,  // kToken: tag, token, seq, ck
          6,  // kReport: tag, sum, covered, formed, seq, ck
          4,  // kVerdict: tag, verdict, seq, ck
      };
      if (tag > kVerdict || nf != kExpectedFields[tag]) {
        ++corrupt_discards_;
        continue;
      }
      // Semantic range guard: a corrupted candidate depth that escaped the
      // checksum must not overflow the depth we would rebroadcast (depth+1
      // in an id_bits field). Legit depths are < k and always fit.
      if (tag == kCandidate && widths_.id_bits < 64 &&
          fields[2] + 1 >= (1ULL << widths_.id_bits)) {
        ++corrupt_discards_;
        continue;
      }
      const std::size_t idx = neighbor_index(ctx, msg.sender);
      const std::uint64_t seq = fields[nf - 2];
      if (seq <= last_seq_in_[idx]) {
        ++dup_discards_;
        continue;
      }
      last_seq_in_[idx] = seq;
    }
    handle_message(ctx, msg);
    if (done_) return;
  }
}

void TokenPackagingProgram::handle_message(net::NodeContext& ctx,
                                           const net::MessageView& msg) {
  switch (static_cast<Tag>(msg.field(0))) {
    case kCandidate: {
      const std::uint64_t candidate = msg.field(1);
      const std::uint64_t depth = msg.field(2);
      if (candidate > best_) {
        // Adopt: the sender becomes our BFS parent for this wave.
        best_ = candidate;
        parent_ = msg.sender;
        depth_ = depth + 1;
        std::fill(responded_.begin(), responded_.end(), false);
        responded_[neighbor_index(ctx, msg.sender)] = true;
        children_.clear();
        acked_ = false;
        pending_broadcast_ = true;
      } else if (candidate == best_) {
        // The sender already knows our wave: it is not our child.
        responded_[neighbor_index(ctx, msg.sender)] = true;
      }
      // candidate < best_: stale wave; the sender will adopt ours.
      break;
    }
    case kAck: {
      if (msg.field(1) == best_) {
        responded_[neighbor_index(ctx, msg.sender)] = true;
        children_.push_back(msg.sender);
      }
      break;
    }
    case kStart: {
      if (!started_) begin_phase_two(ctx);
      break;
    }
    case kCValue: {
      c_children_sum_ += msg.field(1);
      ++c_received_count_;
      if (c_received_count_ == children_.size()) {
        expected_tokens_ = c_children_sum_;
        c_value_ = (own_tokens_.size() + c_children_sum_) % tau_;
      }
      break;
    }
    case kToken: {
      token_store_.push_back(msg.field(1));
      ++tokens_received_;
      break;
    }
    case kReport: {
      report_sum_ += msg.field(1);
      if (resil_.enabled) {
        covered_sum_ += msg.field(2);
        formed_sum_ += msg.field(3);
      }
      ++reports_received_;
      break;
    }
    case kVerdict: {
      finish(ctx, msg.field(1));
      return;
    }
  }
}

void TokenPackagingProgram::phase_one(net::NodeContext& ctx) {
  if (pending_broadcast_) {
    pending_broadcast_ = false;
    net::Message msg = make(kCandidate);
    msg.push_field(best_, widths_.id_bits);
    msg.push_field(depth_, widths_.id_bits);
    for (const std::uint32_t u : ctx.neighbors()) {
      if (u != parent_) emit(ctx, u, msg);
    }
  }

  const bool all_responded =
      std::all_of(responded_.begin(), responded_.end(),
                  [](bool b) { return b; });
  if (parent_ == kNoParent) {
    // Self-candidate. Only the global maximum's wave can complete.
    if (all_responded) {
      is_leader_ = true;
      begin_phase_two(ctx);
    }
  } else if (!acked_ && all_responded) {
    net::Message msg = make(kAck);
    msg.push_field(best_, widths_.id_bits);
    emit(ctx, parent_, msg);
    acked_ = true;
  }
}

void TokenPackagingProgram::begin_phase_two(net::NodeContext& ctx) {
  started_ = true;
  token_store_.insert(token_store_.end(), own_tokens_.begin(),
                      own_tokens_.end());
  const net::Message start = make(kStart);
  for (const std::uint32_t child : children_) emit(ctx, child, start);
  if (children_.empty()) {
    expected_tokens_ = 0;
    c_value_ = own_tokens_.size() % tau_;
  }
}

void TokenPackagingProgram::upward_slot(net::NodeContext& ctx) {
  if (!c_value_) return;

  if (parent_ == kNoParent) {
    // Root: "forwarding" means discarding; costs no communication.
    while (!packaged_ && tokens_forwarded_ < *c_value_ &&
           tokens_forwarded_ < token_store_.size()) {
      ++tokens_forwarded_;
    }
    return;
  }

  // One upward message per round: c-value first, then tokens, then the
  // report (order matters for the CONGEST budget and for correctness).
  if (!c_sent_) {
    net::Message msg = make(kCValue);
    msg.push_field(*c_value_, widths_.count_bits);
    emit(ctx, parent_, msg);
    c_sent_ = true;
    return;
  }
  if (!packaged_ && tokens_forwarded_ < *c_value_ &&
      tokens_forwarded_ < token_store_.size()) {
    net::Message msg = make(kToken);
    msg.push_field(token_store_[tokens_forwarded_], widths_.token_bits);
    emit(ctx, parent_, msg);
    ++tokens_forwarded_;
    return;
  }
  if (packaged_ && !report_sent_ && reports_received_ == children_.size()) {
    net::Message msg = make(kReport);
    msg.push_field(clamp_count(report_sum_), widths_.count_bits);
    if (resil_.enabled) {
      msg.push_field(clamp_count(1 + covered_sum_), widths_.count_bits);
      msg.push_field(clamp_count(formed_sum_ + packages_.size()),
                     widths_.count_bits);
    }
    emit(ctx, parent_, msg);
    report_sent_ = true;
  }
}

void TokenPackagingProgram::try_package(net::NodeContext& ctx) {
  if (packaged_ || !c_value_) return;
  // All children announced (c_value_ set requires that), all their tokens
  // arrived, and our own forwarding quota is met.
  if (tokens_received_ != expected_tokens_) return;
  if (tokens_forwarded_ != *c_value_) return;

  const std::uint64_t kept = token_store_.size() - *c_value_;
  if (kept % tau_ != 0) {
    throw std::logic_error("token packaging: kept tokens not a multiple of "
                           "tau — protocol invariant broken");
  }
  for (std::uint64_t start = *c_value_; start < token_store_.size();
       start += tau_) {
    packages_.emplace_back(token_store_.begin() + static_cast<long>(start),
                           token_store_.begin() +
                               static_cast<long>(start + tau_));
  }
  packaged_ = true;
  report_sum_ += local_report(ctx);
}

void TokenPackagingProgram::apply_timeouts(net::NodeContext& ctx) {
  const std::uint64_t r = ctx.round();
  if (!started_ && r >= resil_.phase1_timeout) {
    if (parent_ == kNoParent) {
      // A wave that cannot complete (lost acks, crashed neighbors): claim
      // leadership anyway — but only at leader_timeout, which sits a full
      // ack-cascade (D hops) past phase1_timeout. Blocked descendants force
      // their acks at phase1_timeout, and if those acks complete our tree
      // after all, the normal path fires first and the tree is intact. At
      // most one forced leader survives per surviving wave; extra leaders
      // only degrade accuracy, never liveness.
      if (r >= resil_.leader_timeout) {
        is_leader_ = true;
        begin_phase_two(ctx);
      }
    } else {
      if (!acked_) {
        // Release the parent's wave despite unresponsive neighbors.
        net::Message msg = make(kAck);
        msg.push_field(best_, widths_.id_bits);
        emit(ctx, parent_, msg);
        acked_ = true;
      }
      if (r >= resil_.package_round) {
        // The start signal never came: run the remaining phases over the
        // local subtree so our tokens still get packaged and reported.
        begin_phase_two(ctx);
      }
    }
  }
  if (started_ && !done_ && !packaged_ && r >= resil_.force_package_round) {
    // Staggered past package_round so nodes that only began phase two there
    // still had D + tau rounds to announce c-values and push tokens before
    // the pipeline is frozen.
    force_package(ctx);
  }
  if (packaged_ && !done_ && !report_sent_ && parent_ != kNoParent &&
      r >= forced_report_round()) {
    // Report without waiting for missing children (their coverage is lost).
    net::Message msg = make(kReport);
    msg.push_field(clamp_count(report_sum_), widths_.count_bits);
    msg.push_field(clamp_count(1 + covered_sum_), widths_.count_bits);
    msg.push_field(clamp_count(formed_sum_ + packages_.size()),
                   widths_.count_bits);
    emit(ctx, parent_, msg);
    report_sent_ = true;
  }
  if (!done_ && r + 1 >= resil_.deadline) {
    if (parent_ == kNoParent) {
      report_sent_ = true;
      decide_as_root(ctx);
    } else {
      // No verdict arrived in time: reject-bias (sound for one-sided
      // testers — a healthy run would have delivered the verdict).
      finish(ctx, 1);
    }
  }
}

void TokenPackagingProgram::force_package(net::NodeContext& ctx) {
  // Stop forwarding and chop the surviving unforwarded tokens into full
  // tau-packages; the remainder (< tau tokens) is dropped, mirroring the
  // root's discard of c(r) tokens in the healthy protocol.
  const std::uint64_t start = tokens_forwarded_;
  const std::uint64_t avail = token_store_.size() - start;
  const std::uint64_t full = avail - avail % tau_;
  for (std::uint64_t s = start; s < start + full; s += tau_) {
    packages_.emplace_back(token_store_.begin() + static_cast<long>(s),
                           token_store_.begin() + static_cast<long>(s + tau_));
  }
  packaged_ = true;
  report_sum_ += local_report(ctx);
}

std::uint64_t TokenPackagingProgram::forced_report_round() const noexcept {
  // Deeper nodes force first so partial sums still convergecast: depth
  // depth_budget fires at report_base, the root's children last. Each level
  // gets 1 + retransmits rounds of headroom for the hop.
  const std::uint64_t d = std::min(depth_, resil_.depth_budget);
  return resil_.report_base +
         (resil_.retransmits + 1) * (resil_.depth_budget - d);
}

void TokenPackagingProgram::decide_as_root(net::NodeContext& ctx) {
  covered_decided_ = 1 + covered_sum_;
  formed_decided_ = formed_sum_ + packages_.size();
  finish(ctx, resil_.enabled
                  ? decide_with_quorum(report_sum_, covered_decided_,
                                       formed_decided_)
                  : decide_at_root(report_sum_));
}

void TokenPackagingProgram::finish(net::NodeContext& ctx,
                                   std::uint64_t verdict) {
  verdict_ = verdict;
  net::Message msg = make(kVerdict);
  msg.push_field(verdict_, widths_.count_bits);
  for (const std::uint32_t child : children_) emit(ctx, child, msg);
  done_ = true;
  // Resilient mode defers the halt (see on_round) so the verdict's
  // retransmission copies still go out.
  if (!resil_.enabled) ctx.halt();
}

std::uint64_t TokenPackagingProgram::local_report(net::NodeContext&) {
  return packages_.size();
}

std::uint64_t TokenPackagingProgram::decide_at_root(std::uint64_t total) {
  return total;
}

std::uint64_t TokenPackagingProgram::decide_with_quorum(std::uint64_t total,
                                                        std::uint64_t covered,
                                                        std::uint64_t formed) {
  (void)covered;
  (void)formed;
  return decide_at_root(total);
}

}  // namespace dut::congest
