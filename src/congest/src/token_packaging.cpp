#include "dut/congest/token_packaging.hpp"

#include <algorithm>
#include <stdexcept>

namespace dut::congest {

TokenPackagingProgram::TokenPackagingProgram(std::uint64_t external_id,
                                             std::uint64_t token,
                                             std::uint64_t tau,
                                             MessageWidths widths)
    : TokenPackagingProgram(external_id,
                            std::vector<std::uint64_t>{token}, tau, widths) {}

TokenPackagingProgram::TokenPackagingProgram(
    std::uint64_t external_id, std::vector<std::uint64_t> tokens,
    std::uint64_t tau, MessageWidths widths)
    : my_external_id_(external_id),
      own_tokens_(std::move(tokens)),
      tau_(tau),
      widths_(widths),
      best_(external_id) {
  if (tau == 0) {
    throw std::invalid_argument("TokenPackagingProgram: tau must be >= 1");
  }
  if (own_tokens_.empty()) {
    throw std::invalid_argument(
        "TokenPackagingProgram: node must hold at least one token");
  }
}

net::Message TokenPackagingProgram::make(Tag tag) const {
  net::Message msg;
  msg.push_field(static_cast<std::uint64_t>(tag), 3);
  return msg;
}

std::size_t TokenPackagingProgram::neighbor_index(net::NodeContext& ctx,
                                                  std::uint32_t id) {
  const auto neighbors = ctx.neighbors();
  const auto it = std::find(neighbors.begin(), neighbors.end(), id);
  if (it == neighbors.end()) {
    throw std::logic_error("token packaging: message from non-neighbor");
  }
  return static_cast<std::size_t>(it - neighbors.begin());
}

void TokenPackagingProgram::on_round(net::NodeContext& ctx) {
  if (responded_.empty() && ctx.degree() > 0) {
    responded_.assign(ctx.degree(), false);
  }

  process_inbox(ctx);
  if (done_) return;

  if (!started_) phase_one(ctx);
  if (started_ && !done_) {
    upward_slot(ctx);
    try_package(ctx);
    // Root termination: verdict once the whole tree has reported.
    if (parent_ == kNoParent && packaged_ && !report_sent_ &&
        reports_received_ == children_.size()) {
      report_sent_ = true;
      finish(ctx, decide_at_root(report_sum_));
    }
  }
}

void TokenPackagingProgram::process_inbox(net::NodeContext& ctx) {
  for (const net::MessageView msg : ctx.inbox()) {
    switch (static_cast<Tag>(msg.field(0))) {
      case kCandidate: {
        const std::uint64_t candidate = msg.field(1);
        const std::uint64_t depth = msg.field(2);
        if (candidate > best_) {
          // Adopt: the sender becomes our BFS parent for this wave.
          best_ = candidate;
          parent_ = msg.sender;
          depth_ = depth + 1;
          std::fill(responded_.begin(), responded_.end(), false);
          responded_[neighbor_index(ctx, msg.sender)] = true;
          children_.clear();
          acked_ = false;
          pending_broadcast_ = true;
        } else if (candidate == best_) {
          // The sender already knows our wave: it is not our child.
          responded_[neighbor_index(ctx, msg.sender)] = true;
        }
        // candidate < best_: stale wave; the sender will adopt ours.
        break;
      }
      case kAck: {
        if (msg.field(1) == best_) {
          responded_[neighbor_index(ctx, msg.sender)] = true;
          children_.push_back(msg.sender);
        }
        break;
      }
      case kStart: {
        if (!started_) begin_phase_two(ctx);
        break;
      }
      case kCValue: {
        c_children_sum_ += msg.field(1);
        ++c_received_count_;
        if (c_received_count_ == children_.size()) {
          expected_tokens_ = c_children_sum_;
          c_value_ = (own_tokens_.size() + c_children_sum_) % tau_;
        }
        break;
      }
      case kToken: {
        token_store_.push_back(msg.field(1));
        ++tokens_received_;
        break;
      }
      case kReport: {
        report_sum_ += msg.field(1);
        ++reports_received_;
        break;
      }
      case kVerdict: {
        finish(ctx, msg.field(1));
        return;
      }
    }
  }
}

void TokenPackagingProgram::phase_one(net::NodeContext& ctx) {
  if (pending_broadcast_) {
    pending_broadcast_ = false;
    net::Message msg = make(kCandidate);
    msg.push_field(best_, widths_.id_bits);
    msg.push_field(depth_, widths_.id_bits);
    for (const std::uint32_t u : ctx.neighbors()) {
      if (u != parent_) ctx.send(u, msg);
    }
  }

  const bool all_responded =
      std::all_of(responded_.begin(), responded_.end(),
                  [](bool b) { return b; });
  if (parent_ == kNoParent) {
    // Self-candidate. Only the global maximum's wave can complete.
    if (all_responded) {
      is_leader_ = true;
      begin_phase_two(ctx);
    }
  } else if (!acked_ && all_responded) {
    net::Message msg = make(kAck);
    msg.push_field(best_, widths_.id_bits);
    ctx.send(parent_, msg);
    acked_ = true;
  }
}

void TokenPackagingProgram::begin_phase_two(net::NodeContext& ctx) {
  started_ = true;
  token_store_.insert(token_store_.end(), own_tokens_.begin(),
                      own_tokens_.end());
  const net::Message start = make(kStart);
  for (const std::uint32_t child : children_) ctx.send(child, start);
  if (children_.empty()) {
    expected_tokens_ = 0;
    c_value_ = own_tokens_.size() % tau_;
  }
}

void TokenPackagingProgram::upward_slot(net::NodeContext& ctx) {
  if (!c_value_) return;

  if (parent_ == kNoParent) {
    // Root: "forwarding" means discarding; costs no communication.
    while (tokens_forwarded_ < *c_value_ &&
           tokens_forwarded_ < token_store_.size()) {
      ++tokens_forwarded_;
    }
    return;
  }

  // One upward message per round: c-value first, then tokens, then the
  // report (order matters for the CONGEST budget and for correctness).
  if (!c_sent_) {
    net::Message msg = make(kCValue);
    msg.push_field(*c_value_, widths_.count_bits);
    ctx.send(parent_, msg);
    c_sent_ = true;
    return;
  }
  if (tokens_forwarded_ < *c_value_ &&
      tokens_forwarded_ < token_store_.size()) {
    net::Message msg = make(kToken);
    msg.push_field(token_store_[tokens_forwarded_], widths_.token_bits);
    ctx.send(parent_, msg);
    ++tokens_forwarded_;
    return;
  }
  if (packaged_ && !report_sent_ && reports_received_ == children_.size()) {
    net::Message msg = make(kReport);
    msg.push_field(report_sum_, widths_.count_bits);
    ctx.send(parent_, msg);
    report_sent_ = true;
  }
}

void TokenPackagingProgram::try_package(net::NodeContext& ctx) {
  if (packaged_ || !c_value_) return;
  // All children announced (c_value_ set requires that), all their tokens
  // arrived, and our own forwarding quota is met.
  if (tokens_received_ != expected_tokens_) return;
  if (tokens_forwarded_ != *c_value_) return;

  const std::uint64_t kept = token_store_.size() - *c_value_;
  if (kept % tau_ != 0) {
    throw std::logic_error("token packaging: kept tokens not a multiple of "
                           "tau — protocol invariant broken");
  }
  for (std::uint64_t start = *c_value_; start < token_store_.size();
       start += tau_) {
    packages_.emplace_back(token_store_.begin() + static_cast<long>(start),
                           token_store_.begin() +
                               static_cast<long>(start + tau_));
  }
  packaged_ = true;
  report_sum_ += local_report(ctx);
}

void TokenPackagingProgram::finish(net::NodeContext& ctx,
                                   std::uint64_t verdict) {
  verdict_ = verdict;
  net::Message msg = make(kVerdict);
  msg.push_field(verdict_, widths_.count_bits);
  for (const std::uint32_t child : children_) ctx.send(child, msg);
  done_ = true;
  ctx.halt();
}

std::uint64_t TokenPackagingProgram::local_report(net::NodeContext&) {
  return packages_.size();
}

std::uint64_t TokenPackagingProgram::decide_at_root(std::uint64_t total) {
  return total;
}

}  // namespace dut::congest
