#include "dut/congest/uniformity.hpp"

#include "uniformity_program.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dut/obs/phase_timer.hpp"
#include "dut/stats/rng.hpp"

namespace dut::congest {

namespace {

/// Bit budget for the protocol's widest message: a candidate carries an id
/// and a depth; a token carries a domain element; counts carry up to k.
/// Resilient mode appends a sequence number and a 4-bit checksum to every
/// message, and reports carry two extra counts (coverage and formed
/// packages).
std::uint64_t required_bandwidth(std::uint64_t n, std::uint32_t k,
                                 const PackagingResilience& resil) {
  const unsigned id_bits = net::bits_for(k);
  const unsigned token_bits = net::bits_for(n);
  const unsigned count_bits = net::bits_for(static_cast<std::uint64_t>(k) + 1);
  if (!resil.enabled) {
    return 3 +
           std::max<std::uint64_t>({2ULL * id_bits, token_bits, count_bits});
  }
  return 3 +
         std::max<std::uint64_t>(
             {2ULL * id_bits, token_bits, 3ULL * count_bits}) +
         resil.seq_bits + 4;
}


/// Resolves the resilient-mode timeout schedule from the graph. Every stage
/// budget is the fault-free bound stretched by the retransmission factor
/// plus slack, so at zero fault rates no timeout ever fires and the run is
/// bit-identical to the plain protocol. Consecutive forced actions are
/// staggered by the time the previous one's messages need to propagate:
/// forced acks (phase1_timeout) get a D-hop cascade before blocked
/// candidates claim leadership (leader_timeout); late phase-two starters
/// (package_round) get D + tau rounds to push tokens before packaging is
/// frozen (force_package_round).
PackagingResilience resolve_schedule(const net::Graph& graph,
                                     std::uint64_t tau,
                                     const CongestResilience& opts) {
  const std::uint64_t R = opts.retransmits;
  const std::uint64_t D = std::max<std::uint32_t>(1, graph.diameter());
  PackagingResilience s;
  s.enabled = true;
  s.retransmits = R;
  s.phase1_timeout = (R + 2) * (2 * D + 4) + 8;
  s.leader_timeout = s.phase1_timeout + (R + 1) * (D + 1) + 4;
  s.package_round = s.leader_timeout + (R + 2) * (D + tau + 4) + 8;
  s.force_package_round = s.package_round + (R + 1) * (D + tau + 2) + 4;
  s.report_base = s.force_package_round + 2;
  s.depth_budget = D;
  s.deadline = s.report_base + (R + 1) * (D + 1) + 6;
  s.quorum = opts.quorum_nodes != 0 ? opts.quorum_nodes : graph.num_nodes();
  s.seq_bits = net::bits_for(4 * (s.deadline + 16));
  return s;
}

detail::Annotations packaging_annotations(const net::ProtocolDriver& driver,
                                          const PackagingResilience& schedule,
                                          std::uint64_t tau) {
  detail::Annotations ann;
  ann.emplace_back("proto", "token_packaging");
  ann.emplace_back("topo", driver.graph().spec());
  ann.emplace_back("tau", std::to_string(tau));
  if (schedule.enabled) {
    ann.emplace_back("retx", std::to_string(schedule.retransmits));
    ann.emplace_back("quorum", std::to_string(schedule.quorum));
  }
  if (driver.fault_plan() != nullptr) {
    ann.emplace_back("faults", driver.fault_plan()->spec());
  }
  return ann;
}

}  // namespace

CongestPlan plan_congest(std::uint64_t n, std::uint32_t k, double epsilon,
                         double p, core::TailBound bound,
                         std::uint64_t samples_per_node) {
  if (n < 2) throw std::invalid_argument("plan_congest: n must be >= 2");
  if (k < 2) throw std::invalid_argument("plan_congest: k must be >= 2");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("plan_congest: eps must be in (0, 2]");
  }
  if (!(p > 0.0) || p >= 0.5) {
    throw std::invalid_argument("plan_congest: p must be in (0, 0.5)");
  }
  if (samples_per_node == 0) {
    throw std::invalid_argument(
        "plan_congest: samples_per_node must be >= 1");
  }

  CongestPlan plan;
  plan.n = n;
  plan.k = k;
  plan.epsilon = epsilon;
  plan.p = p;
  plan.bound = bound;
  plan.samples_per_node = samples_per_node;
  plan.bandwidth_bits = required_bandwidth(n, k, PackagingResilience{});

  // Scan package sizes from small to large: the round complexity is
  // O(D + tau), so the smallest feasible tau wins. The budget A(tau) =
  // ell * delta(tau) ~ k*s0*(tau-1)/(2n) grows with tau, so the scan
  // crosses from "too little rejection mass" into feasibility and
  // eventually out of the gap domain (delta too large); stop there.
  const std::uint64_t total_tokens = k * samples_per_node;
  const std::uint64_t tau_cap = total_tokens / 2;
  for (std::uint64_t tau = 2; tau <= tau_cap; ++tau) {
    const std::uint64_t ell = total_tokens / tau;
    if (ell < 2) break;
    core::GapTesterParams params;
    try {
      params = core::params_from_samples(n, epsilon, tau);
    } catch (const std::invalid_argument&) {
      break;
    }
    if (!params.has_gap) {
      if (params.delta > 0.5) break;  // past the gap domain; no point going on
      continue;
    }
    const core::ThresholdPlacement placement =
        core::place_threshold(ell, params, p, bound);
    if (!placement.feasible) continue;
    plan.feasible = true;
    plan.tau = tau;
    plan.num_packages = ell;
    plan.package_params = params;
    plan.threshold = placement.threshold;
    plan.eta_uniform = placement.eta_uniform;
    plan.eta_far = placement.eta_far;
    plan.bound_false_reject = placement.bound_false_reject;
    plan.bound_false_accept = placement.bound_false_accept;
    return plan;
  }

  plan.infeasible_reason =
      "no package size tau admits a threshold over floor(k/tau) virtual "
      "nodes; the network holds too few samples for this (n, eps, p)";
  return plan;
}

namespace {

void validate_congest_graph(const CongestPlan& plan, const net::Graph& graph,
                            const char* who) {
  if (!plan.feasible) {
    throw std::logic_error(std::string(who) + ": plan is infeasible");
  }
  if (graph.num_nodes() != plan.k) {
    throw std::invalid_argument(std::string(who) + ": graph size != k");
  }
  if (!graph.is_connected()) {
    // A disconnected network would elect one leader per component and
    // silently drop up to (tau-1) tokens per component, breaking
    // Definition 2; reject it up front.
    throw std::invalid_argument(std::string(who) + ": graph disconnected");
  }
}

net::EngineConfig congest_config(std::uint64_t bandwidth_bits,
                                 std::uint64_t max_rounds) {
  net::EngineConfig config;
  config.model = net::Model::kCongest;
  config.bandwidth_bits = bandwidth_bits;
  config.max_rounds = max_rounds;
  return config;
}

}  // namespace

net::ProtocolDriver make_congest_driver(const CongestPlan& plan,
                                        const net::Graph& graph) {
  validate_congest_graph(plan, graph, "make_congest_driver");
  return net::ProtocolDriver(
      graph, congest_config(plan.bandwidth_bits,
                            20ULL * (graph.num_nodes() + plan.tau) + 1000));
}

CongestSetup make_congest_setup(const CongestPlan& plan,
                                const net::Graph& graph,
                                const CongestResilience& opts,
                                const net::FaultPlan* faults) {
  validate_congest_graph(plan, graph, "make_congest_setup");
  if (!opts.enabled) {
    return CongestSetup(
        graph,
        congest_config(plan.bandwidth_bits,
                       20ULL * (graph.num_nodes() + plan.tau) + 1000),
        PackagingResilience{}, faults);
  }
  if (opts.quorum_nodes > graph.num_nodes()) {
    throw std::invalid_argument(
        "make_congest_setup: quorum exceeds the network size");
  }
  const PackagingResilience schedule =
      resolve_schedule(graph, plan.tau, opts);
  return CongestSetup(
      graph,
      congest_config(required_bandwidth(plan.n, plan.k, schedule),
                     schedule.deadline + schedule.retransmits + 16),
      schedule, faults);
}

namespace {

CongestRunResult run_congest_with_counts(
    const CongestPlan& plan, net::ProtocolDriver& driver,
    const PackagingResilience& schedule, const core::AliasSampler& sampler,
    const std::vector<std::uint64_t>& counts, std::uint64_t seed, bool traced,
    detail::Annotations annotations) {
  if (sampler.n() != plan.n) {
    throw std::invalid_argument("run_congest_uniformity: domain mismatch");
  }
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) {
    if (c == 0) {
      throw std::invalid_argument(
          "run_congest_uniformity: every node needs at least one sample");
    }
    total += c;
  }
  if (total != static_cast<std::uint64_t>(plan.k) * plan.samples_per_node) {
    throw std::invalid_argument(
        "run_congest_uniformity: sample counts do not match the plan's "
        "total budget (ell would change)");
  }

  const std::uint32_t k = driver.graph().num_nodes();

  // Pre-draw every node's tokens in node-id order: run_trial builds
  // programs in the same order, so the sample_rng stream (and hence every
  // verdict) is bit-identical to drawing inside the make callback — this
  // just fences the draws into the "sample" phase span.
  std::vector<std::vector<std::uint64_t>> tokens(k);
  {
    obs::PhaseTimer span("sample");
    stats::Xoshiro256 sample_rng = stats::derive_stream(seed, 0x5A9);
    for (std::uint32_t v = 0; v < k; ++v) {
      tokens[v] = sampler.sample_many(sample_rng, counts[v]);
    }
  }

  std::vector<std::uint64_t> ids;
  MessageWidths widths{};
  {
    obs::PhaseTimer span("encode");
    ids = detail::external_ids(k, seed);
    widths = detail::widths_for(plan.n, k);
  }

  // The "route" span covers the whole engine execution; "decide" nests
  // inside it (the extract callback runs before the engine lease returns).
  obs::PhaseTimer route_span("route");
  return driver.run_trial(
      seed, traced, std::move(annotations),
      [&](std::uint32_t v) {
        return std::make_unique<detail::UniformityTestProgram>(
            ids[v], std::move(tokens[v]), plan, widths, schedule);
      },
      [&](const auto& programs, const net::EngineMetrics& metrics) {
        obs::PhaseTimer span("decide");
        CongestRunResult result;
        result.metrics = metrics;
        // Under faults several forced leaders can coexist; the winner is
        // the one with the largest external id (its wave dominates any
        // surviving fragment of the tree).
        const detail::UniformityTestProgram* root = nullptr;
        for (std::uint32_t v = 0; v < k; ++v) {
          result.num_packages += programs[v]->packages().size();
          if (programs[v]->is_leader() &&
              (root == nullptr ||
               programs[v]->leader_external_id() >
                   root->leader_external_id())) {
            root = programs[v].get();
            result.leader = v;
          }
        }
        bool rejects;
        std::uint64_t reject_count = 0;
        if (root == nullptr) {
          // Leaderless network (e.g. every candidate crashed): no verdict
          // was ever decided — reject-bias.
          rejects = true;
          result.quorum_met = false;
        } else {
          reject_count = root->total_report();
          if (schedule.enabled) {
            result.nodes_reporting = root->covered_total();
            if (result.nodes_reporting == 0) {
              // The root never reached its decision point (crashed or
              // starved past max_rounds): again reject-bias.
              rejects = true;
              result.quorum_met = false;
            } else {
              rejects = root->verdict() == 1;
              result.quorum_met = root->quorum_met();
            }
          } else {
            rejects = root->verdict() == 1;
            result.nodes_reporting = k;
          }
        }
        result.verdict =
            core::Verdict::make(!rejects, reject_count, result.num_packages,
                                metrics.rounds, metrics.total_bits);
        return result;
      });
}

std::vector<std::uint64_t> uniform_counts(const CongestPlan& plan) {
  return std::vector<std::uint64_t>(plan.k, plan.samples_per_node);
}

}  // namespace

CongestRunResult run_congest_uniformity(const CongestPlan& plan,
                                        CongestSetup& setup,
                                        const core::AliasSampler& sampler,
                                        std::uint64_t seed, bool traced) {
  return run_congest_with_counts(
      plan, setup.driver, setup.schedule, sampler, uniform_counts(plan), seed,
      traced,
      detail::congest_annotations(plan, setup.driver.graph(), setup.schedule,
                                  sampler, setup.driver.fault_plan()));
}

CongestRunResult run_congest_uniformity(const CongestPlan& plan,
                                        net::ProtocolDriver& driver,
                                        const core::AliasSampler& sampler,
                                        std::uint64_t seed, bool traced) {
  return run_congest_with_counts(
      plan, driver, PackagingResilience{}, sampler, uniform_counts(plan),
      seed, traced,
      detail::congest_annotations(plan, driver.graph(), PackagingResilience{},
                                  sampler, driver.fault_plan()));
}

CongestRunResult run_congest_uniformity_heterogeneous(
    const CongestPlan& plan, net::ProtocolDriver& driver,
    const core::AliasSampler& sampler,
    const std::vector<std::uint64_t>& counts, std::uint64_t seed,
    bool traced) {
  if (counts.size() != driver.graph().num_nodes()) {
    throw std::invalid_argument(
        "run_congest_uniformity_heterogeneous: one count per node");
  }
  return run_congest_with_counts(plan, driver, PackagingResilience{}, sampler,
                                 counts, seed, traced, {});
}

CongestRunResult run_congest_uniformity_heterogeneous(
    const CongestPlan& plan, CongestSetup& setup,
    const core::AliasSampler& sampler,
    const std::vector<std::uint64_t>& counts, std::uint64_t seed,
    bool traced) {
  if (counts.size() != setup.driver.graph().num_nodes()) {
    throw std::invalid_argument(
        "run_congest_uniformity_heterogeneous: one count per node");
  }
  return run_congest_with_counts(plan, setup.driver, setup.schedule, sampler,
                                 counts, seed, traced, {});
}

AmplifiedCongestResult run_congest_uniformity_amplified(
    const CongestPlan& plan, net::ProtocolDriver& driver,
    const core::AliasSampler& sampler, std::uint64_t seed,
    std::uint64_t repetitions, bool traced) {
  if (repetitions == 0 || repetitions % 2 == 0) {
    throw std::invalid_argument(
        "run_congest_uniformity_amplified: repetitions must be odd and >= 1");
  }
  AmplifiedCongestResult result;
  std::uint64_t reject_verdicts = 0;
  std::uint64_t total_bits = 0;
  for (std::uint64_t r = 0; r < repetitions; ++r) {
    const auto run = run_congest_uniformity(
        plan, driver, sampler, stats::SplitMix64(seed ^ (r + 1)).next(),
        traced);
    reject_verdicts += run.verdict.rejects();
    result.total_rounds += run.metrics.rounds;
    result.total_messages += run.metrics.messages;
    total_bits += run.metrics.total_bits;
  }
  result.verdict = core::Verdict::make(
      2 * reject_verdicts <= repetitions, reject_verdicts, repetitions,
      result.total_rounds, total_bits);
  return result;
}

net::ProtocolDriver make_packaging_driver(const net::Graph& graph,
                                          std::uint64_t tau) {
  if (tau == 0) {
    throw std::invalid_argument("make_packaging_driver: tau must be >= 1");
  }
  if (!graph.is_connected()) {
    throw std::invalid_argument("make_packaging_driver: graph disconnected");
  }
  const std::uint32_t k = graph.num_nodes();
  return net::ProtocolDriver(
      graph, congest_config(required_bandwidth(k, k, PackagingResilience{}),
                            20ULL * (k + tau) + 1000));
}

PackagingSetup make_packaging_setup(const net::Graph& graph,
                                    std::uint64_t tau,
                                    const CongestResilience& opts,
                                    const net::FaultPlan* faults) {
  if (tau == 0) {
    throw std::invalid_argument("make_packaging_setup: tau must be >= 1");
  }
  if (!graph.is_connected()) {
    throw std::invalid_argument("make_packaging_setup: graph disconnected");
  }
  const std::uint32_t k = graph.num_nodes();
  if (!opts.enabled) {
    return PackagingSetup(
        graph,
        congest_config(required_bandwidth(k, k, PackagingResilience{}),
                       20ULL * (k + tau) + 1000),
        PackagingResilience{}, tau, faults);
  }
  const PackagingResilience schedule = resolve_schedule(graph, tau, opts);
  return PackagingSetup(
      graph,
      congest_config(required_bandwidth(k, k, schedule),
                     schedule.deadline + schedule.retransmits + 16),
      schedule, tau, faults);
}

namespace {

PackagingRunResult run_packaging_trial(net::ProtocolDriver& driver,
                                       const PackagingResilience& schedule,
                                       std::uint64_t tau, std::uint64_t seed,
                                       bool traced) {
  const std::uint32_t k = driver.graph().num_nodes();
  std::vector<std::uint64_t> ids;
  MessageWidths widths{};
  {
    obs::PhaseTimer span("encode");
    ids = detail::external_ids(k, seed);
    // Tokens are node ids here, so tests can track every token exactly.
    widths = detail::widths_for(k, k);
  }

  obs::PhaseTimer route_span("route");
  return driver.run_trial(
      seed, traced, packaging_annotations(driver, schedule, tau),
      [&](std::uint32_t v) {
        return std::make_unique<TokenPackagingProgram>(
            ids[v], std::vector<std::uint64_t>{v}, tau, widths, schedule);
      },
      [&](const auto& programs, const net::EngineMetrics& metrics) {
        obs::PhaseTimer span("decide");
        PackagingRunResult result;
        result.metrics = metrics;
        std::uint64_t packaged_tokens = 0;
        for (std::uint32_t v = 0; v < k; ++v) {
          if (programs[v]->is_leader()) result.leader = v;
          for (const auto& package : programs[v]->packages()) {
            packaged_tokens += package.size();
            result.packages.push_back(package);
          }
        }
        result.tokens_dropped = packaged_tokens <= k ? k - packaged_tokens : 0;
        return result;
      });
}

}  // namespace

PackagingRunResult run_token_packaging(net::ProtocolDriver& driver,
                                       std::uint64_t tau, std::uint64_t seed,
                                       bool traced) {
  return run_packaging_trial(driver, PackagingResilience{}, tau, seed,
                             traced);
}

PackagingRunResult run_token_packaging(PackagingSetup& setup,
                                       std::uint64_t seed, bool traced) {
  return run_packaging_trial(setup.driver, setup.schedule, setup.tau, seed,
                             traced);
}

}  // namespace dut::congest
