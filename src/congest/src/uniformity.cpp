#include "dut/congest/uniformity.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "dut/stats/rng.hpp"

namespace dut::congest {

namespace {

/// Bit budget for the protocol's widest message: a candidate carries an id
/// and a depth; a token carries a domain element; counts carry up to k.
std::uint64_t required_bandwidth(std::uint64_t n, std::uint32_t k) {
  const unsigned id_bits = net::bits_for(k);
  const unsigned token_bits = net::bits_for(n);
  const unsigned count_bits = net::bits_for(static_cast<std::uint64_t>(k) + 1);
  return 3 + std::max<std::uint64_t>({2ULL * id_bits, token_bits, count_bits});
}

MessageWidths widths_for(std::uint64_t n, std::uint32_t k) {
  return MessageWidths{net::bits_for(k), net::bits_for(n),
                       net::bits_for(static_cast<std::uint64_t>(k) + 1)};
}

/// Deterministic permutation of {0..k-1} used as external ids, so leader
/// election runs on arbitrary identifiers as in the paper.
std::vector<std::uint64_t> external_ids(std::uint32_t k, std::uint64_t seed) {
  std::vector<std::uint64_t> ids(k);
  std::iota(ids.begin(), ids.end(), 0);
  stats::Xoshiro256 rng = stats::derive_stream(seed, 0x1D5);
  for (std::uint32_t i = k; i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.below(i)]);
  }
  return ids;
}

/// Virtual-node tester: each package of tau tokens is fed to the
/// single-collision tester; the report is the count of rejecting packages
/// and the root compares the network total against the threshold.
class UniformityTestProgram : public TokenPackagingProgram {
 public:
  UniformityTestProgram(std::uint64_t external_id,
                        std::vector<std::uint64_t> tokens,
                        const CongestPlan& plan, MessageWidths widths)
      : TokenPackagingProgram(external_id, std::move(tokens), plan.tau,
                              widths),
        plan_(&plan) {}

 protected:
  std::uint64_t local_report(net::NodeContext&) override {
    std::uint64_t rejecting = 0;
    for (const auto& package : packages()) {
      if (core::has_collision(package, plan_->n)) ++rejecting;
    }
    return rejecting;
  }

  std::uint64_t decide_at_root(std::uint64_t total) override {
    return total >= plan_->threshold ? 1 : 0;
  }

 private:
  const CongestPlan* plan_;
};

}  // namespace

CongestPlan plan_congest(std::uint64_t n, std::uint32_t k, double epsilon,
                         double p, core::TailBound bound,
                         std::uint64_t samples_per_node) {
  if (n < 2) throw std::invalid_argument("plan_congest: n must be >= 2");
  if (k < 2) throw std::invalid_argument("plan_congest: k must be >= 2");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("plan_congest: eps must be in (0, 2]");
  }
  if (!(p > 0.0) || p >= 0.5) {
    throw std::invalid_argument("plan_congest: p must be in (0, 0.5)");
  }
  if (samples_per_node == 0) {
    throw std::invalid_argument(
        "plan_congest: samples_per_node must be >= 1");
  }

  CongestPlan plan;
  plan.n = n;
  plan.k = k;
  plan.epsilon = epsilon;
  plan.p = p;
  plan.bound = bound;
  plan.samples_per_node = samples_per_node;
  plan.bandwidth_bits = required_bandwidth(n, k);

  // Scan package sizes from small to large: the round complexity is
  // O(D + tau), so the smallest feasible tau wins. The budget A(tau) =
  // ell * delta(tau) ~ k*s0*(tau-1)/(2n) grows with tau, so the scan
  // crosses from "too little rejection mass" into feasibility and
  // eventually out of the gap domain (delta too large); stop there.
  const std::uint64_t total_tokens = k * samples_per_node;
  const std::uint64_t tau_cap = total_tokens / 2;
  for (std::uint64_t tau = 2; tau <= tau_cap; ++tau) {
    const std::uint64_t ell = total_tokens / tau;
    if (ell < 2) break;
    core::GapTesterParams params;
    try {
      params = core::params_from_samples(n, epsilon, tau);
    } catch (const std::invalid_argument&) {
      break;
    }
    if (!params.has_gap) {
      if (params.delta > 0.5) break;  // past the gap domain; no point going on
      continue;
    }
    const core::ThresholdPlacement placement =
        core::place_threshold(ell, params, p, bound);
    if (!placement.feasible) continue;
    plan.feasible = true;
    plan.tau = tau;
    plan.num_packages = ell;
    plan.package_params = params;
    plan.threshold = placement.threshold;
    plan.eta_uniform = placement.eta_uniform;
    plan.eta_far = placement.eta_far;
    plan.bound_false_reject = placement.bound_false_reject;
    plan.bound_false_accept = placement.bound_false_accept;
    return plan;
  }

  plan.infeasible_reason =
      "no package size tau admits a threshold over floor(k/tau) virtual "
      "nodes; the network holds too few samples for this (n, eps, p)";
  return plan;
}

net::ProtocolDriver make_congest_driver(const CongestPlan& plan,
                                        const net::Graph& graph) {
  if (!plan.feasible) {
    throw std::logic_error("make_congest_driver: plan is infeasible");
  }
  if (graph.num_nodes() != plan.k) {
    throw std::invalid_argument("make_congest_driver: graph size != k");
  }
  if (!graph.is_connected()) {
    // A disconnected network would elect one leader per component and
    // silently drop up to (tau-1) tokens per component, breaking
    // Definition 2; reject it up front.
    throw std::invalid_argument("make_congest_driver: graph disconnected");
  }
  net::EngineConfig config;
  config.model = net::Model::kCongest;
  config.bandwidth_bits = plan.bandwidth_bits;
  config.max_rounds = 20ULL * (graph.num_nodes() + plan.tau) + 1000;
  return net::ProtocolDriver(graph, config);
}

namespace {

CongestRunResult run_congest_with_counts(
    const CongestPlan& plan, net::ProtocolDriver& driver,
    const core::AliasSampler& sampler,
    const std::vector<std::uint64_t>& counts, std::uint64_t seed,
    bool traced) {
  if (sampler.n() != plan.n) {
    throw std::invalid_argument("run_congest_uniformity: domain mismatch");
  }
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) {
    if (c == 0) {
      throw std::invalid_argument(
          "run_congest_uniformity: every node needs at least one sample");
    }
    total += c;
  }
  if (total != static_cast<std::uint64_t>(plan.k) * plan.samples_per_node) {
    throw std::invalid_argument(
        "run_congest_uniformity: sample counts do not match the plan's "
        "total budget (ell would change)");
  }

  const std::uint32_t k = driver.graph().num_nodes();
  const auto ids = external_ids(k, seed);
  const MessageWidths widths = widths_for(plan.n, k);
  stats::Xoshiro256 sample_rng = stats::derive_stream(seed, 0x5A9);

  return driver.run_trial(
      seed, traced,
      [&](std::uint32_t v) {
        return std::make_unique<UniformityTestProgram>(
            ids[v], sampler.sample_many(sample_rng, counts[v]), plan, widths);
      },
      [&](const auto& programs, const net::EngineMetrics& metrics) {
        CongestRunResult result;
        result.metrics = metrics;
        for (std::uint32_t v = 0; v < k; ++v) {
          result.num_packages += programs[v]->packages().size();
          if (programs[v]->is_leader()) {
            result.leader = v;
            result.reject_count = programs[v]->total_report();
          }
        }
        result.network_rejects = programs[0]->verdict() == 1;
        return result;
      });
}

std::vector<std::uint64_t> uniform_counts(const CongestPlan& plan) {
  return std::vector<std::uint64_t>(plan.k, plan.samples_per_node);
}

}  // namespace

CongestRunResult run_congest_uniformity(const CongestPlan& plan,
                                        const net::Graph& graph,
                                        const core::AliasSampler& sampler,
                                        std::uint64_t seed) {
  net::ProtocolDriver driver = make_congest_driver(plan, graph);
  return run_congest_with_counts(plan, driver, sampler, uniform_counts(plan),
                                 seed, /*traced=*/true);
}

CongestRunResult run_congest_uniformity(const CongestPlan& plan,
                                        net::ProtocolDriver& driver,
                                        const core::AliasSampler& sampler,
                                        std::uint64_t seed, bool traced) {
  return run_congest_with_counts(plan, driver, sampler, uniform_counts(plan),
                                 seed, traced);
}

CongestRunResult run_congest_uniformity_heterogeneous(
    const CongestPlan& plan, const net::Graph& graph,
    const core::AliasSampler& sampler,
    const std::vector<std::uint64_t>& counts, std::uint64_t seed) {
  net::ProtocolDriver driver = make_congest_driver(plan, graph);
  return run_congest_uniformity_heterogeneous(plan, driver, sampler, counts,
                                              seed, /*traced=*/true);
}

CongestRunResult run_congest_uniformity_heterogeneous(
    const CongestPlan& plan, net::ProtocolDriver& driver,
    const core::AliasSampler& sampler,
    const std::vector<std::uint64_t>& counts, std::uint64_t seed,
    bool traced) {
  if (counts.size() != driver.graph().num_nodes()) {
    throw std::invalid_argument(
        "run_congest_uniformity_heterogeneous: one count per node");
  }
  return run_congest_with_counts(plan, driver, sampler, counts, seed, traced);
}

AmplifiedCongestResult run_congest_uniformity_amplified(
    const CongestPlan& plan, const net::Graph& graph,
    const core::AliasSampler& sampler, std::uint64_t seed,
    std::uint64_t repetitions) {
  net::ProtocolDriver driver = make_congest_driver(plan, graph);
  return run_congest_uniformity_amplified(plan, driver, sampler, seed,
                                          repetitions, /*traced=*/true);
}

AmplifiedCongestResult run_congest_uniformity_amplified(
    const CongestPlan& plan, net::ProtocolDriver& driver,
    const core::AliasSampler& sampler, std::uint64_t seed,
    std::uint64_t repetitions, bool traced) {
  if (repetitions == 0 || repetitions % 2 == 0) {
    throw std::invalid_argument(
        "run_congest_uniformity_amplified: repetitions must be odd and >= 1");
  }
  AmplifiedCongestResult result;
  result.repetitions = repetitions;
  for (std::uint64_t r = 0; r < repetitions; ++r) {
    const auto run = run_congest_uniformity(
        plan, driver, sampler, stats::SplitMix64(seed ^ (r + 1)).next(),
        traced);
    result.reject_verdicts += run.network_rejects;
    result.total_rounds += run.metrics.rounds;
    result.total_messages += run.metrics.messages;
  }
  result.network_rejects = 2 * result.reject_verdicts > repetitions;
  return result;
}

net::ProtocolDriver make_packaging_driver(const net::Graph& graph,
                                          std::uint64_t tau) {
  if (tau == 0) {
    throw std::invalid_argument("make_packaging_driver: tau must be >= 1");
  }
  if (!graph.is_connected()) {
    throw std::invalid_argument("make_packaging_driver: graph disconnected");
  }
  const std::uint32_t k = graph.num_nodes();
  net::EngineConfig config;
  config.model = net::Model::kCongest;
  config.bandwidth_bits = required_bandwidth(k, k);
  config.max_rounds = 20ULL * (k + tau) + 1000;
  return net::ProtocolDriver(graph, config);
}

PackagingRunResult run_token_packaging(const net::Graph& graph,
                                       std::uint64_t tau, std::uint64_t seed) {
  net::ProtocolDriver driver = make_packaging_driver(graph, tau);
  return run_token_packaging(driver, tau, seed, /*traced=*/true);
}

PackagingRunResult run_token_packaging(net::ProtocolDriver& driver,
                                       std::uint64_t tau, std::uint64_t seed,
                                       bool traced) {
  const std::uint32_t k = driver.graph().num_nodes();
  const auto ids = external_ids(k, seed);
  // Tokens are node ids here, so tests can track every token exactly.
  const MessageWidths widths = widths_for(k, k);

  return driver.run_trial(
      seed, traced,
      [&](std::uint32_t v) {
        return std::make_unique<TokenPackagingProgram>(ids[v], v, tau,
                                                       widths);
      },
      [&](const auto& programs, const net::EngineMetrics& metrics) {
        PackagingRunResult result;
        result.metrics = metrics;
        std::uint64_t packaged_tokens = 0;
        for (std::uint32_t v = 0; v < k; ++v) {
          if (programs[v]->is_leader()) result.leader = v;
          for (const auto& package : programs[v]->packages()) {
            packaged_tokens += package.size();
            result.packages.push_back(package);
          }
        }
        result.tokens_dropped = k - packaged_tokens;
        return result;
      });
}

}  // namespace dut::congest
