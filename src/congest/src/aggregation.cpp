#include "dut/congest/aggregation.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace dut::congest {

SumAggregationProgram::SumAggregationProgram(std::uint64_t external_id,
                                             std::uint64_t value,
                                             unsigned value_bits,
                                             std::uint32_t num_nodes)
    : TokenPackagingProgram(
          external_id, /*token=*/0, /*tau=*/1,
          MessageWidths{net::bits_for(num_nodes), 1, value_bits}),
      value_(value) {
  if (value_bits < 64 && (value >> value_bits) != 0) {
    throw std::invalid_argument(
        "SumAggregationProgram: value does not fit in value_bits");
  }
}

AggregationResult run_sum_aggregation(const net::Graph& graph,
                                      const std::vector<std::uint64_t>& values,
                                      unsigned value_bits,
                                      std::uint64_t seed) {
  const std::uint32_t k = graph.num_nodes();
  if (values.size() != k) {
    throw std::invalid_argument("run_sum_aggregation: one value per node");
  }
  if (!graph.is_connected()) {
    throw std::invalid_argument("run_sum_aggregation: graph disconnected");
  }

  // External ids: a seed-derived permutation, as elsewhere.
  std::vector<std::uint64_t> ids(k);
  for (std::uint32_t v = 0; v < k; ++v) ids[v] = v;
  stats::Xoshiro256 perm_rng = stats::derive_stream(seed, 0xA66);
  for (std::uint32_t i = k; i > 1; --i) {
    std::swap(ids[i - 1], ids[perm_rng.below(i)]);
  }

  std::vector<std::unique_ptr<SumAggregationProgram>> programs;
  std::vector<net::NodeProgram*> raw;
  programs.reserve(k);
  raw.reserve(k);
  for (std::uint32_t v = 0; v < k; ++v) {
    programs.push_back(std::make_unique<SumAggregationProgram>(
        ids[v], values[v], value_bits, k));
    raw.push_back(programs.back().get());
  }

  net::EngineConfig config;
  config.model = net::Model::kCongest;
  config.bandwidth_bits =
      3 + std::max<std::uint64_t>(2ULL * net::bits_for(k), value_bits);
  config.max_rounds = 20ULL * k + 1000;
  config.seed = seed;
  net::Engine engine(graph, config);
  engine.run(raw);

  AggregationResult result;
  result.metrics = engine.metrics();
  result.sum = programs[0]->sum();
  for (std::uint32_t v = 0; v < k; ++v) {
    if (programs[v]->is_leader()) result.leader = v;
    if (programs[v]->sum() != result.sum) {
      throw std::logic_error(
          "run_sum_aggregation: nodes disagree on the sum");
    }
  }
  return result;
}

}  // namespace dut::congest
