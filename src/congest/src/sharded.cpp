#include "dut/congest/sharded.hpp"

#include <cstdlib>
#include <span>
#include <stdexcept>
#include <utility>

#include "uniformity_program.hpp"

#include "dut/net/transport/shm_transport.hpp"
#include "dut/net/transport/worker_group.hpp"
#include "dut/obs/metrics.hpp"
#include "dut/obs/phase_timer.hpp"
#include "dut/obs/trace_merge.hpp"

namespace dut::congest {

namespace {

/// Per-rank verdict summary exchanged after every trial's engine run. Word
/// layout (all ranks publish; the merge is replayed identically on each):
///   0  packages formed on this shard
///   1  a leader finished on this shard (0/1)
///   2  that leader's external id
///   3  that leader's node id
///   4  that leader's total_report
///   5  that leader's verdict word
///   6  that leader's covered_total
///   7  that leader's quorum_met (0/1)
constexpr std::size_t kSummaryWords = 8;

/// One sharded trial, identical on every rank: the same pre-draws and
/// program construction as run_congest_uniformity (uniform counts), an
/// engine run over this rank's shard, then the verdict merge over the
/// all-gathered shard summaries. The merge replays the in-process extract:
/// the winning root is the finished leader with the largest external id,
/// scanned in ascending rank (= ascending node) order with strictly-greater
/// wins, and every reject-bias branch is taken from the winner's summary.
CongestRunResult run_shard_trial(const CongestPlan& plan, CongestSetup& setup,
                                 const core::AliasSampler& sampler,
                                 net::Transport& transport,
                                 std::uint64_t seed, bool traced) {
  const std::uint32_t k = setup.driver.graph().num_nodes();

  // Every rank draws all k nodes' tokens from the shared (seed, 0x5A9)
  // stream — stream identity is a function of the seed alone, so the shard
  // a node lands on never changes its tokens.
  std::vector<std::vector<std::uint64_t>> tokens(k);
  {
    obs::PhaseTimer span("sample");
    stats::Xoshiro256 sample_rng = stats::derive_stream(seed, 0x5A9);
    for (std::uint32_t v = 0; v < k; ++v) {
      tokens[v] = sampler.sample_many(sample_rng, plan.samples_per_node);
    }
  }

  std::vector<std::uint64_t> ids;
  MessageWidths widths{};
  {
    obs::PhaseTimer span("encode");
    ids = detail::external_ids(k, seed);
    widths = detail::widths_for(plan.n, k);
  }

  obs::PhaseTimer route_span("route");
  return setup.driver.run_trial(
      seed, traced,
      detail::congest_annotations(plan, setup.driver.graph(), setup.schedule,
                                  sampler, setup.driver.fault_plan()),
      [&](std::uint32_t v) {
        return std::make_unique<detail::UniformityTestProgram>(
            ids[v], std::move(tokens[v]), plan, widths, setup.schedule);
      },
      [&](const auto& programs, const net::EngineMetrics& metrics) {
        obs::PhaseTimer span("decide");
        const auto [first, last] = transport.shard(k);
        std::uint64_t summary[kSummaryWords] = {};
        const detail::UniformityTestProgram* shard_root = nullptr;
        for (std::uint32_t v = first; v < last; ++v) {
          summary[0] += programs[v]->packages().size();
          if (programs[v]->is_leader() &&
              (shard_root == nullptr ||
               programs[v]->leader_external_id() >
                   shard_root->leader_external_id())) {
            shard_root = programs[v].get();
            summary[3] = v;
          }
        }
        if (shard_root != nullptr) {
          summary[1] = 1;
          summary[2] = shard_root->leader_external_id();
          summary[4] = shard_root->total_report();
          summary[5] = shard_root->verdict();
          summary[6] = shard_root->covered_total();
          summary[7] = shard_root->quorum_met() ? 1 : 0;
        }

        std::vector<std::uint64_t> all;
        transport.exchange_summaries(
            std::span<const std::uint64_t>(summary, kSummaryWords), all);

        CongestRunResult result;
        result.metrics = metrics;  // post-reduction: already global
        const std::uint64_t* winner = nullptr;
        for (std::uint32_t r = 0; r < transport.num_ranks(); ++r) {
          const std::uint64_t* s = all.data() + r * kSummaryWords;
          result.num_packages += s[0];
          if (s[1] != 0 && (winner == nullptr || s[2] > winner[2])) {
            winner = s;
          }
        }
        bool rejects;
        std::uint64_t reject_count = 0;
        if (winner == nullptr) {
          rejects = true;
          result.quorum_met = false;
        } else {
          result.leader = static_cast<std::uint32_t>(winner[3]);
          reject_count = winner[4];
          if (setup.schedule.enabled) {
            result.nodes_reporting = winner[6];
            if (result.nodes_reporting == 0) {
              rejects = true;
              result.quorum_met = false;
            } else {
              rejects = winner[5] == 1;
              result.quorum_met = winner[7] != 0;
            }
          } else {
            rejects = winner[5] == 1;
            result.nodes_reporting = k;
          }
        }
        result.verdict =
            core::Verdict::make(!rejects, reject_count, result.num_packages,
                                metrics.rounds, metrics.total_bits);
        return result;
      });
}

void validate_sharded_options(const ShardedCongestOptions& options) {
  if (options.num_ranks < 2 || options.num_ranks > net::shm::kMaxRanks) {
    throw std::invalid_argument(
        "run_congest_uniformity_sharded: num_ranks must be in [2, " +
        std::to_string(net::shm::kMaxRanks) + "]");
  }
}

}  // namespace

std::vector<CongestRunResult> coordinate_congest_uniformity(
    net::ShmSession& session, const CongestPlan& plan,
    const net::Graph& graph, const core::AliasSampler& sampler,
    const ShardedCongestOptions& options) {
  if (sampler.n() != plan.n) {
    throw std::invalid_argument(
        "coordinate_congest_uniformity: domain mismatch");
  }
  CongestSetup setup =
      make_congest_setup(plan, graph, options.resilience, options.faults);
  net::ShmTransport transport(session, 0);
  setup.driver.set_transport(&transport);

  std::vector<CongestRunResult> results;
  results.reserve(options.seeds.size());
  for (std::size_t t = 0; t < options.seeds.size(); ++t) {
    const bool traced = t == options.traced_trial;
    const std::uint64_t seq =
        session.begin_trial(options.seeds[t], traced ? 1 : 0);
    try {
      results.push_back(run_shard_trial(plan, setup, sampler, transport,
                                        options.seeds[t], traced));
      session.post_ready(0, seq);
    } catch (const net::TransportAborted&) {
      // A peer rank aborted: map the shared code back to the exception the
      // in-process runner would have thrown. (The faulting rank's own
      // transcript shard carries the original detail string.)
      session.post_ready(0, seq);
      switch (static_cast<net::TransportAbortCode>(session.abort_code())) {
        case net::TransportAbortCode::kProtocolViolation:
          throw net::ProtocolViolation(
              "a peer rank reported a protocol violation (sharded run)");
        case net::TransportAbortCode::kBandwidthExceeded:
          throw net::BandwidthExceeded(
              "a peer rank reported a bandwidth violation (sharded run)");
        case net::TransportAbortCode::kRoundLimitExceeded:
          throw net::RoundLimitExceeded(
              "a peer rank hit the round limit (sharded run)");
        default:
          throw;  // kOther / deadline: keep the TransportAborted
      }
    } catch (...) {
      // This rank's own model exception: the engine already published the
      // abort code; let the caller see the original.
      session.post_ready(0, seq);
      throw;
    }
  }
  return results;
}

void serve_congest_uniformity(net::ShmSession& session, std::uint32_t rank,
                              const CongestPlan& plan,
                              const net::Graph& graph,
                              const core::AliasSampler& sampler,
                              const ShardedCongestOptions& options) {
  CongestSetup setup =
      make_congest_setup(plan, graph, options.resilience, options.faults);
  net::ShmTransport transport(session, rank);
  setup.driver.set_transport(&transport);

  std::uint64_t last_seq = 0;
  for (;;) {
    const net::ShmSession::Trial trial = session.wait_trial(last_seq);
    if (trial.shutdown) return;
    last_seq = trial.seq;
    try {
      const CongestRunResult result = run_shard_trial(
          plan, setup, sampler, transport, trial.seed,
          (trial.flags & 1) != 0);
      (void)result;  // the coordinator's copy is the one reported
    } catch (const net::TransportAborted&) {
      // A peer published the abort; the coordinator rethrows it.
    } catch (const net::ProtocolViolation&) {
      // Local model exceptions: the engine published the matching abort
      // code on its unwind path; swallow and keep serving later trials.
    } catch (const net::BandwidthExceeded&) {
    } catch (const net::RoundLimitExceeded&) {
    } catch (...) {
      session.publish_abort(
          static_cast<std::uint64_t>(net::TransportAbortCode::kOther));
    }
    session.post_ready(rank, trial.seq);
  }
}

std::vector<CongestRunResult> run_congest_uniformity_sharded(
    const CongestPlan& plan, const net::Graph& graph,
    const core::AliasSampler& sampler, const ShardedCongestOptions& options) {
  validate_sharded_options(options);
  // Validate once, before forking: a plan/graph mismatch should throw in
  // the caller's process, not hang a worker group.
  CongestSetup probe =
      make_congest_setup(plan, graph, options.resilience, options.faults);
  (void)probe;
  if (sampler.n() != plan.n) {
    throw std::invalid_argument(
        "run_congest_uniformity_sharded: domain mismatch");
  }

  net::ShmSession session = net::ShmSession::create_anonymous(
      net::ShmSession::Options{.num_ranks = options.num_ranks});
  net::WorkerGroup group(session, [&](std::uint32_t rank) {
    serve_congest_uniformity(session, rank, plan, graph, sampler, options);
  });
  std::vector<CongestRunResult> results =
      coordinate_congest_uniformity(session, plan, graph, sampler, options);
  group.finish();

  // With a traced trial in the sweep, every rank wrote `<path>.rank<r>`;
  // splice them back into the single transcript in-process runs produce.
  // After finish(): the workers' writers are closed and flushed.
  if (options.traced_trial < options.seeds.size() && obs::enabled()) {
    if (const char* path = std::getenv("DUT_TRACE");
        path != nullptr && *path != '\0') {
      (void)obs::merge_trace_shards(path, options.num_ranks);
    }
  }
  return results;
}

}  // namespace dut::congest
