#pragma once

// Multi-process (sharded) CONGEST uniformity sweeps over ShmTransport.
//
// One process per rank: rank 0 coordinates (publishes each trial's seed and
// trace flag through the shared session, runs its own node shard, merges
// the verdict) and ranks 1..N-1 serve trials until shutdown. Every rank
// builds the identical CongestSetup from (plan, graph, resilience, faults)
// and the identical per-trial inputs from the seed alone, so a sharded
// trial's verdict stream is bit-identical to run_congest_uniformity at the
// same seeds — the ctest gate transport_congest_gate holds this equality,
// and DESIGN.md §14 carries the argument.
//
// Abort semantics: a model violation on any rank publishes a shared abort
// code; peers unwind with net::TransportAborted and the coordinator rethrows
// the peer's exception type (ProtocolViolation / BandwidthExceeded /
// RoundLimitExceeded) so sharded callers observe the same failure the
// in-process runner throws. The original detail string stays on the
// faulting rank's shard transcript.

#include <cstdint>
#include <vector>

#include "dut/congest/uniformity.hpp"
#include "dut/net/transport/shm_session.hpp"

namespace dut::congest {

struct ShardedCongestOptions {
  /// Rank processes, 2..net::shm::kMaxRanks.
  std::uint32_t num_ranks = 2;
  /// One trial per seed, run in order.
  std::vector<std::uint64_t> seeds;
  /// Index into `seeds` of the trial that resolves DUT_TRACE (each rank
  /// writes `<path>.rank<r>`; the coordinator merges them back into
  /// `<path>` afterwards). kNoTrace disables tracing entirely.
  static constexpr std::uint64_t kNoTrace = ~std::uint64_t{0};
  std::uint64_t traced_trial = kNoTrace;
  /// Same knobs make_congest_setup takes; every rank must resolve the same
  /// schedule and fault plan or the lockstep rounds would diverge.
  CongestResilience resilience;
  const net::FaultPlan* faults = nullptr;
};

/// All-in-one entry point: validates the plan/graph, creates an anonymous
/// shared session, forks ranks 1..N-1 (net::WorkerGroup), coordinates every
/// trial and reaps the workers. Returns one result per seed.
[[nodiscard]] std::vector<CongestRunResult> run_congest_uniformity_sharded(
    const CongestPlan& plan, const net::Graph& graph,
    const core::AliasSampler& sampler, const ShardedCongestOptions& options);

/// Coordinator loop (rank 0) over an existing session — the building block
/// dut_cli's --workers mode drives with exec-spawned workers instead of
/// forks. Throws the mapped peer exception if any rank aborts a trial.
[[nodiscard]] std::vector<CongestRunResult> coordinate_congest_uniformity(
    net::ShmSession& session, const CongestPlan& plan,
    const net::Graph& graph, const core::AliasSampler& sampler,
    const ShardedCongestOptions& options);

/// Worker loop: serves sharded trials on `rank` until session shutdown.
/// Per-trial model exceptions are swallowed locally (the abort code crosses
/// the session; the coordinator rethrows); the loop keeps serving
/// subsequent trials.
void serve_congest_uniformity(net::ShmSession& session, std::uint32_t rank,
                              const CongestPlan& plan,
                              const net::Graph& graph,
                              const core::AliasSampler& sampler,
                              const ShardedCongestOptions& options);

}  // namespace dut::congest
