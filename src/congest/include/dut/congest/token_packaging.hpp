#pragma once

// The tau-token-packaging protocol (paper Definition 2, Theorem 5.1), built
// on an honest CONGEST implementation of its prerequisites:
//
//  Phase 1 — leader election + BFS tree. FloodMax with echo (PIF)
//    termination detection: every node floods the largest external id it has
//    seen, adopting the first sender of the eventual maximum as its BFS
//    parent; acknowledgements flow back up each candidate's wave, and only
//    the global maximum's wave can complete (a losing wave is always
//    superseded before covering the graph). The winner learns completion in
//    O(D) rounds without knowing D — matching the paper's remark that nodes
//    need not know the diameter.
//  Phase 2 — c(v) convergecast. The leader broadcasts a start signal down
//    the finished tree; each node v computes c(v) = (1 + sum_children c(u))
//    mod tau and sends it to its parent (paper Section 5's recurrence).
//  Phase 3 — token pipelining. Each node forwards the first c(v) tokens it
//    holds (its own token first, then arrivals in order) to its parent, one
//    per round per the CONGEST budget; the root discards its first c(r).
//    Nodes need no global clock: a node starts as soon as its own c(v) is
//    fixed, and correctness follows from per-node counting.
//  Phase 4 — packaging. Once a node has sent its c(v) tokens and received
//    the sum of its children's announced counts, its remaining tokens number
//    an exact multiple of tau and are chopped into packages.
//  Phase 5 — report convergecast + verdict broadcast. Each node reports an
//    aggregate (hook: number of packages, or number of *rejecting* packages
//    for the uniformity tester) up the tree; the root decides (hook) and
//    broadcasts the verdict; everyone halts.
//
// Total round complexity: O(D + tau). Every message fits in
// O(log n + log k) bits — enforced, not assumed, by the engine.
//
// Resilient mode (PackagingResilience.enabled) hardens the protocol against
// a faulty network (net::FaultPlan): every message carries a per-edge
// monotone sequence number and a 4-bit checksum; receivers discard
// corrupted or duplicate arrivals; each message is retransmitted up to
// `retransmits` extra times in rounds where the edge slot is otherwise idle
// (a newer message to the same neighbor supersedes the remaining copies, so
// fault-free timing is identical to the plain protocol); reports carry the
// number of nodes covered by the subtree and the number of packages formed
// in it; and a round schedule bounds every phase, staggered so each forced
// action leaves room for the previous one's messages to propagate:
//
//   phase1_timeout      blocked nodes release their parent's wave (forced
//                       ack despite unresponsive neighbors)
//   leader_timeout      blocked self-candidates claim leadership — AFTER
//                       the forced-ack cascade had D rounds to reach them,
//                       so a candidate whose tree did complete late still
//                       learns of it before claiming an empty tree
//   package_round       nodes that never saw the start signal begin phase
//                       two over their local subtree
//   force_package_round packaging is forced (full tau-packages from the
//                       surviving tokens, remainder dropped) — AFTER the
//                       late starters had D + tau rounds to push tokens
//   report_base         reports forced at a depth-staggered round
//   deadline            the root decides via decide_with_quorum
//
// decide_with_quorum sees the covered-node count and the formed-package
// count and applies reject-bias when either falls short (sound for
// one-sided testers, which may only err toward rejection). With all fault
// rates zero no timeout ever fires and the verdict stream is bit-identical
// to the plain protocol's.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "dut/net/engine.hpp"

namespace dut::congest {

/// Per-node widths used to declare message sizes honestly.
struct MessageWidths {
  unsigned id_bits;     ///< external ids and depths: bits_for(k)
  unsigned token_bits;  ///< token values: bits_for(n)
  unsigned count_bits;  ///< c-values and report sums: bits_for(k + 1)
};

/// The resilient-mode round schedule and knobs (see file comment). All
/// rounds are absolute; resolve them from the graph diameter and tau so the
/// timeouts sit safely past the fault-free completion round (then they
/// never fire on a healthy network).
struct PackagingResilience {
  bool enabled = false;
  std::uint64_t retransmits = 2;     ///< extra copies per protocol message
  std::uint64_t phase1_timeout = 0;  ///< blocked nodes force their ack here
  std::uint64_t leader_timeout = 0;  ///< blocked candidates claim leadership
  std::uint64_t package_round = 0;   ///< missed-start nodes begin phase two
  std::uint64_t force_package_round = 0;  ///< force packaging here
  std::uint64_t report_base = 0;     ///< deepest nodes force reports here
  std::uint64_t depth_budget = 0;    ///< report stagger window (>= tree depth)
  std::uint64_t deadline = 0;        ///< root decides; all halt soon after
  std::uint64_t quorum = 0;          ///< min covered nodes for an accept
  unsigned seq_bits = 20;            ///< sequence-number field width
};

/// The 4-bit checksum appended (after the sequence number) to every
/// resilient-mode message, over all preceding fields. Exposed so tests can
/// corrupt a field and verify the receiver's round-trip detection.
std::uint64_t packaging_checksum(const std::uint64_t* fields,
                                 std::size_t count) noexcept;

class TokenPackagingProgram : public net::NodeProgram {
 public:
  static constexpr std::uint32_t kNoParent = UINT32_MAX;

  /// `external_id` is the node's identity for leader election (the paper's
  /// arbitrary-id assumption: pass a permutation, not necessarily the
  /// engine id). `token` is this node's sample/token in [n].
  TokenPackagingProgram(std::uint64_t external_id, std::uint64_t token,
                        std::uint64_t tau, MessageWidths widths);

  /// Multi-token variant: the paper's "each node starts with a single
  /// sample" is a simplification ("the results generalize in a
  /// straightforward manner to larger s"); here a node may hold any number
  /// of tokens, and the recurrence becomes c(v) = (|own| + sum c(u)) mod
  /// tau. Round complexity stays O(D + tau): c(v) < tau regardless.
  TokenPackagingProgram(std::uint64_t external_id,
                        std::vector<std::uint64_t> tokens, std::uint64_t tau,
                        MessageWidths widths);

  /// Resilient-mode variant; `resil` supplies the retransmission budget and
  /// the timeout schedule (resil.enabled may be false, which is exactly the
  /// plain constructor).
  TokenPackagingProgram(std::uint64_t external_id,
                        std::vector<std::uint64_t> tokens, std::uint64_t tau,
                        MessageWidths widths, PackagingResilience resil);

  void on_round(net::NodeContext& ctx) override;

  // --- results, valid after the engine run completes ---
  bool is_leader() const noexcept { return is_leader_; }
  std::uint32_t parent() const noexcept { return parent_; }
  const std::vector<std::uint32_t>& children() const noexcept {
    return children_;
  }
  std::uint64_t depth() const noexcept { return depth_; }
  std::uint64_t leader_external_id() const noexcept { return best_; }
  std::uint64_t c_value() const noexcept { return c_value_ ? *c_value_ : 0; }
  const std::vector<std::vector<std::uint64_t>>& packages() const noexcept {
    return packages_;
  }
  /// Verdict decided at the root and broadcast to everyone.
  std::uint64_t verdict() const noexcept { return verdict_; }
  /// Root only: the aggregated report value.
  std::uint64_t total_report() const noexcept { return report_sum_; }
  /// Root only, resilient mode: nodes covered by the reports that made it
  /// (own node included) at decision time.
  std::uint64_t covered_total() const noexcept { return covered_decided_; }
  /// Root only, resilient mode: packages formed network-wide according to
  /// the reports that made it (own packages included) at decision time.
  std::uint64_t formed_total() const noexcept { return formed_decided_; }
  const PackagingResilience& resilience() const noexcept { return resil_; }
  /// Resilient mode: inbound messages discarded for a failed checksum.
  std::uint64_t corrupt_discards() const noexcept { return corrupt_discards_; }
  /// Resilient mode: inbound messages discarded as duplicates (stale seq).
  std::uint64_t duplicate_discards() const noexcept { return dup_discards_; }

 protected:
  /// Saturates a count at its count_bits field capacity: report/coverage
  /// sums can exceed it only when a corrupted field escaped the 4-bit
  /// checksum, and a saturated (still wire-valid) report beats an aborted
  /// run.
  std::uint64_t clamp_count(std::uint64_t value) const noexcept {
    if (widths_.count_bits >= 64) return value;
    const std::uint64_t cap = (1ULL << widths_.count_bits) - 1;
    return value < cap ? value : cap;
  }

  /// Called once when this node's packages are final; the return value is
  /// summed up the tree. Default: the number of packages.
  virtual std::uint64_t local_report(net::NodeContext& ctx);

  /// Called at the root with the network-wide report sum; the returned
  /// verdict is broadcast. Default: echo the total.
  virtual std::uint64_t decide_at_root(std::uint64_t total);

  /// Resilient-mode root decision: `covered` is the number of nodes whose
  /// reports reached the root (transitively, own node included) and
  /// `formed` the number of packages those reports account for. Default
  /// ignores both and defers to decide_at_root; the uniformity tester
  /// overrides it with the quorum rule (coverage AND token mass).
  virtual std::uint64_t decide_with_quorum(std::uint64_t total,
                                           std::uint64_t covered,
                                           std::uint64_t formed);

 private:
  enum Tag : std::uint64_t {
    kCandidate = 0,
    kAck = 1,
    kStart = 2,
    kCValue = 3,
    kToken = 4,
    kReport = 5,
    kVerdict = 6,
  };

  void process_inbox(net::NodeContext& ctx);
  void phase_one(net::NodeContext& ctx);
  void begin_phase_two(net::NodeContext& ctx);
  void upward_slot(net::NodeContext& ctx);
  void try_package(net::NodeContext& ctx);
  void finish(net::NodeContext& ctx, std::uint64_t verdict);

  // Resilient-mode machinery.
  void handle_message(net::NodeContext& ctx, const net::MessageView& msg);
  void apply_timeouts(net::NodeContext& ctx);
  void force_package(net::NodeContext& ctx);
  std::uint64_t forced_report_round() const noexcept;
  void decide_as_root(net::NodeContext& ctx);
  /// Routes a send: direct in plain mode; in resilient mode stamps seq +
  /// checksum and loads the per-neighbor retransmission slot (the first
  /// copy still leaves this round, via flush_slots).
  void emit(net::NodeContext& ctx, std::uint32_t to, net::Message msg);
  void flush_slots(net::NodeContext& ctx);

  std::size_t neighbor_index(net::NodeContext& ctx, std::uint32_t id);
  net::Message make(Tag tag) const;

  // Immutable parameters.
  std::uint64_t my_external_id_;
  std::vector<std::uint64_t> own_tokens_;
  std::uint64_t tau_;
  MessageWidths widths_;
  PackagingResilience resil_;

  // Phase 1 state.
  std::uint64_t best_;
  std::uint64_t depth_ = 0;
  std::uint32_t parent_ = kNoParent;
  std::vector<bool> responded_;
  std::vector<std::uint32_t> children_;
  bool pending_broadcast_ = true;
  bool acked_ = false;
  bool is_leader_ = false;
  bool started_ = false;

  // Phase 2/3 state.
  std::optional<std::uint64_t> c_value_;
  bool c_sent_ = false;
  std::uint64_t c_children_sum_ = 0;
  std::uint64_t c_received_count_ = 0;
  std::uint64_t expected_tokens_ = 0;
  std::uint64_t tokens_received_ = 0;
  std::uint64_t tokens_forwarded_ = 0;  // sent up (or discarded at the root)
  std::vector<std::uint64_t> token_store_;  // own token + arrivals, in order
  std::vector<std::vector<std::uint64_t>> packages_;
  bool packaged_ = false;

  // Phase 5 state.
  std::uint64_t report_sum_ = 0;
  std::uint64_t reports_received_ = 0;
  bool report_sent_ = false;
  std::uint64_t verdict_ = 0;
  bool done_ = false;

  // Resilient-mode state: per-neighbor sequence counters and one
  // retransmission slot per neighbor (latest message + copies left).
  std::vector<std::uint64_t> seq_out_;
  std::vector<std::uint64_t> last_seq_in_;
  std::vector<net::Message> slot_msg_;
  std::vector<std::uint32_t> slot_copies_;
  std::uint64_t covered_sum_ = 0;      ///< children's covered counts received
  std::uint64_t covered_decided_ = 0;  ///< root: coverage at decision time
  std::uint64_t formed_sum_ = 0;       ///< children's package counts received
  std::uint64_t formed_decided_ = 0;   ///< root: formed count at decision
  std::uint64_t corrupt_discards_ = 0;
  std::uint64_t dup_discards_ = 0;
};

}  // namespace dut::congest
