#pragma once

// The tau-token-packaging protocol (paper Definition 2, Theorem 5.1), built
// on an honest CONGEST implementation of its prerequisites:
//
//  Phase 1 — leader election + BFS tree. FloodMax with echo (PIF)
//    termination detection: every node floods the largest external id it has
//    seen, adopting the first sender of the eventual maximum as its BFS
//    parent; acknowledgements flow back up each candidate's wave, and only
//    the global maximum's wave can complete (a losing wave is always
//    superseded before covering the graph). The winner learns completion in
//    O(D) rounds without knowing D — matching the paper's remark that nodes
//    need not know the diameter.
//  Phase 2 — c(v) convergecast. The leader broadcasts a start signal down
//    the finished tree; each node v computes c(v) = (1 + sum_children c(u))
//    mod tau and sends it to its parent (paper Section 5's recurrence).
//  Phase 3 — token pipelining. Each node forwards the first c(v) tokens it
//    holds (its own token first, then arrivals in order) to its parent, one
//    per round per the CONGEST budget; the root discards its first c(r).
//    Nodes need no global clock: a node starts as soon as its own c(v) is
//    fixed, and correctness follows from per-node counting.
//  Phase 4 — packaging. Once a node has sent its c(v) tokens and received
//    the sum of its children's announced counts, its remaining tokens number
//    an exact multiple of tau and are chopped into packages.
//  Phase 5 — report convergecast + verdict broadcast. Each node reports an
//    aggregate (hook: number of packages, or number of *rejecting* packages
//    for the uniformity tester) up the tree; the root decides (hook) and
//    broadcasts the verdict; everyone halts.
//
// Total round complexity: O(D + tau). Every message fits in
// O(log n + log k) bits — enforced, not assumed, by the engine.

#include <cstdint>
#include <optional>
#include <vector>

#include "dut/net/engine.hpp"

namespace dut::congest {

/// Per-node widths used to declare message sizes honestly.
struct MessageWidths {
  unsigned id_bits;     ///< external ids and depths: bits_for(k)
  unsigned token_bits;  ///< token values: bits_for(n)
  unsigned count_bits;  ///< c-values and report sums: bits_for(k + 1)
};

class TokenPackagingProgram : public net::NodeProgram {
 public:
  static constexpr std::uint32_t kNoParent = UINT32_MAX;

  /// `external_id` is the node's identity for leader election (the paper's
  /// arbitrary-id assumption: pass a permutation, not necessarily the
  /// engine id). `token` is this node's sample/token in [n].
  TokenPackagingProgram(std::uint64_t external_id, std::uint64_t token,
                        std::uint64_t tau, MessageWidths widths);

  /// Multi-token variant: the paper's "each node starts with a single
  /// sample" is a simplification ("the results generalize in a
  /// straightforward manner to larger s"); here a node may hold any number
  /// of tokens, and the recurrence becomes c(v) = (|own| + sum c(u)) mod
  /// tau. Round complexity stays O(D + tau): c(v) < tau regardless.
  TokenPackagingProgram(std::uint64_t external_id,
                        std::vector<std::uint64_t> tokens, std::uint64_t tau,
                        MessageWidths widths);

  void on_round(net::NodeContext& ctx) override;

  // --- results, valid after the engine run completes ---
  bool is_leader() const noexcept { return is_leader_; }
  std::uint32_t parent() const noexcept { return parent_; }
  const std::vector<std::uint32_t>& children() const noexcept {
    return children_;
  }
  std::uint64_t depth() const noexcept { return depth_; }
  std::uint64_t leader_external_id() const noexcept { return best_; }
  std::uint64_t c_value() const noexcept { return c_value_ ? *c_value_ : 0; }
  const std::vector<std::vector<std::uint64_t>>& packages() const noexcept {
    return packages_;
  }
  /// Verdict decided at the root and broadcast to everyone.
  std::uint64_t verdict() const noexcept { return verdict_; }
  /// Root only: the aggregated report value.
  std::uint64_t total_report() const noexcept { return report_sum_; }

 protected:
  /// Called once when this node's packages are final; the return value is
  /// summed up the tree. Default: the number of packages.
  virtual std::uint64_t local_report(net::NodeContext& ctx);

  /// Called at the root with the network-wide report sum; the returned
  /// verdict is broadcast. Default: echo the total.
  virtual std::uint64_t decide_at_root(std::uint64_t total);

 private:
  enum Tag : std::uint64_t {
    kCandidate = 0,
    kAck = 1,
    kStart = 2,
    kCValue = 3,
    kToken = 4,
    kReport = 5,
    kVerdict = 6,
  };

  void process_inbox(net::NodeContext& ctx);
  void phase_one(net::NodeContext& ctx);
  void begin_phase_two(net::NodeContext& ctx);
  void try_send_c_value(net::NodeContext& ctx);
  void upward_slot(net::NodeContext& ctx);
  void try_package(net::NodeContext& ctx);
  void finish(net::NodeContext& ctx, std::uint64_t verdict);

  std::size_t neighbor_index(net::NodeContext& ctx, std::uint32_t id);
  net::Message make(Tag tag) const;

  // Immutable parameters.
  std::uint64_t my_external_id_;
  std::vector<std::uint64_t> own_tokens_;
  std::uint64_t tau_;
  MessageWidths widths_;

  // Phase 1 state.
  std::uint64_t best_;
  std::uint64_t depth_ = 0;
  std::uint32_t parent_ = kNoParent;
  std::vector<bool> responded_;
  std::vector<std::uint32_t> children_;
  bool pending_broadcast_ = true;
  bool acked_ = false;
  bool is_leader_ = false;
  bool started_ = false;

  // Phase 2/3 state.
  std::optional<std::uint64_t> c_value_;
  bool c_sent_ = false;
  std::uint64_t c_children_sum_ = 0;
  std::uint64_t c_received_count_ = 0;
  std::uint64_t expected_tokens_ = 0;
  std::uint64_t tokens_received_ = 0;
  std::uint64_t tokens_forwarded_ = 0;  // sent up (or discarded at the root)
  std::vector<std::uint64_t> token_store_;  // own token + arrivals, in order
  std::vector<std::vector<std::uint64_t>> packages_;
  bool packaged_ = false;

  // Phase 5 state.
  std::uint64_t report_sum_ = 0;
  std::uint64_t reports_received_ = 0;
  bool report_sent_ = false;
  bool report_ready_ = false;
  std::uint64_t verdict_ = 0;
  bool done_ = false;
};

}  // namespace dut::congest
