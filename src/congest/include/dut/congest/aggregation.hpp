#pragma once

// Distributed sum aggregation in O(D) CONGEST rounds, reusing the
// token-packaging protocol stack (leader election + spanning tree + report
// convergecast + verdict broadcast) with tau = 1: every node keeps its own
// token as a trivial package and reports an arbitrary value, which the
// tree sums at the root and broadcasts back.
//
// This is the primitive the uniformity tester's decision layer is built
// on; exposing it standalone demonstrates (and tests) the stack's
// reusability for other network computations (counting, voting, OR).

#include <cstdint>
#include <vector>

#include "dut/congest/token_packaging.hpp"
#include "dut/net/graph.hpp"

namespace dut::congest {

/// Per-node program: contributes `value`, learns the network-wide sum.
class SumAggregationProgram : public TokenPackagingProgram {
 public:
  /// `value_bits` must be wide enough for the network-wide SUM (the
  /// convergecast carries partial sums); all nodes must agree on it.
  SumAggregationProgram(std::uint64_t external_id, std::uint64_t value,
                        unsigned value_bits, std::uint32_t num_nodes);

  /// The network-wide sum, valid after the run (delivered to every node by
  /// the verdict broadcast).
  std::uint64_t sum() const noexcept { return verdict(); }

 protected:
  std::uint64_t local_report(net::NodeContext&) override { return value_; }
  std::uint64_t decide_at_root(std::uint64_t total) override { return total; }

 private:
  std::uint64_t value_;
};

struct AggregationResult {
  std::uint64_t sum = 0;
  std::uint32_t leader = 0;
  net::EngineMetrics metrics;
};

/// Sums values[v] over all nodes of `graph` in O(D) CONGEST rounds with
/// messages of 3 + max(2*ceil(log2 k), value_bits) bits. Every node learns
/// the sum (verified by the tests); the returned struct reports it once.
/// `value_bits` bounds the SUM, not just the addends.
AggregationResult run_sum_aggregation(const net::Graph& graph,
                                      const std::vector<std::uint64_t>& values,
                                      unsigned value_bits, std::uint64_t seed);

}  // namespace dut::congest
