#pragma once

// CONGEST uniformity testing (paper Theorem 1.4).
//
// Plan: package the k single-sample tokens into packages of size
// tau = Theta(n/(k*eps^4)), treat each package as a "virtual node" running
// the single-collision tester A_delta with s = tau samples, and apply the
// threshold decision rule over the ell = floor(k/tau) virtual nodes. The
// packaging, testing, aggregation and verdict broadcast all run inside the
// CONGEST engine in O(D + tau) rounds with O(log n + log k)-bit messages.
//
// The virtual-node count is deterministic: packaging drops exactly
// k mod tau tokens (the root's leftover), so ell = floor(k/tau) and the
// root can place the threshold locally.
//
// Fault tolerance: make_congest_setup with CongestResilience.enabled builds
// the resilient protocol variant (sequence numbers, checksums, bounded
// retransmission, timeout schedule — see token_packaging.hpp) and runs it
// under a net::FaultPlan. The root then decides with a quorum rule: accept
// only if at least `quorum` nodes' reports reached it AND the reject count
// is below the threshold; otherwise reject. The reject-bias keeps the
// tester's one-sided soundness — faults may only push a uniform input
// toward rejection, never a far input toward acceptance (up to the 4-bit
// checksum's escape probability).

#include <cstdint>
#include <string>
#include <vector>

#include "dut/congest/token_packaging.hpp"
#include "dut/core/gap_tester.hpp"
#include "dut/core/sampler.hpp"
#include "dut/core/verdict.hpp"
#include "dut/core/zero_round.hpp"
#include "dut/net/engine.hpp"
#include "dut/net/fault.hpp"
#include "dut/net/graph.hpp"
#include "dut/net/protocol_driver.hpp"

namespace dut::congest {

struct CongestPlan {
  // Inputs.
  std::uint64_t n = 0;
  std::uint32_t k = 0;
  double epsilon = 0.0;
  double p = 0.0;
  core::TailBound bound = core::TailBound::kExactBinomial;
  /// Samples (tokens) held by each node; the paper's simplifying
  /// assumption is 1, and "the results generalize in a straightforward
  /// manner to larger s" — with s0 > 1 the network has k*s0 tokens and the
  /// feasible regime extends to smaller networks / smaller eps.
  std::uint64_t samples_per_node = 1;

  // Outputs.
  bool feasible = false;
  std::string infeasible_reason;
  std::uint64_t tau = 0;            ///< package size = virtual-node samples
  std::uint64_t num_packages = 0;   ///< ell = floor(k / tau)
  core::GapTesterParams package_params;  ///< A_delta at s = tau
  std::uint64_t threshold = 0;      ///< reject iff >= T packages reject
  double eta_uniform = 0.0;
  double eta_far = 0.0;
  double bound_false_reject = 1.0;
  double bound_false_accept = 1.0;
  /// Per-message bit budget the protocol needs (O(log n + log k)).
  std::uint64_t bandwidth_bits = 0;
};

/// Chooses tau and the threshold. The search mirrors the 0-round threshold
/// planner: find the smallest reject budget A = ell * delta(tau) for which a
/// threshold exists, where delta(tau) = tau(tau-1)/(2n) is fixed by the
/// package size rather than chosen freely. ell = floor(k*samples_per_node /
/// tau) packages are formed deterministically.
CongestPlan plan_congest(std::uint64_t n, std::uint32_t k, double epsilon,
                         double p = 1.0 / 3.0,
                         core::TailBound bound =
                             core::TailBound::kExactBinomial,
                         std::uint64_t samples_per_node = 1);

/// Fault-tolerance knobs for make_congest_setup / make_packaging_setup.
struct CongestResilience {
  bool enabled = false;
  /// Extra copies of each protocol message (sent in otherwise-idle rounds).
  std::uint64_t retransmits = 2;
  /// Minimum nodes whose reports must reach the root for an accept verdict;
  /// 0 means all k (strict quorum). Ignored unless `enabled`.
  std::uint64_t quorum_nodes = 0;
};

/// A graph-bound, ready-to-run protocol instance: the pooled driver plus
/// the resolved resilience schedule. Build one with make_congest_setup /
/// make_packaging_setup; it references the graph (keep it alive) and serves
/// a whole Monte-Carlo sweep, including concurrent trials. Non-movable
/// (the driver pins engine pool addresses) — take it by reference.
struct CongestSetup {
  net::ProtocolDriver driver;
  PackagingResilience schedule;  ///< disabled ⇒ plain protocol

  CongestSetup(const net::Graph& graph, const net::EngineConfig& config,
               const PackagingResilience& resolved,
               const net::FaultPlan* faults)
      : driver(graph, config), schedule(resolved) {
    // Resilient runs always engage the engine's fault mode (even at all-zero
    // rates): retransmission copies may target already-halted nodes, which
    // strict mode treats as a protocol violation.
    if (faults != nullptr) {
      driver.set_fault_plan(*faults);
    } else if (resolved.enabled) {
      driver.set_fault_plan(net::FaultPlan{});
    }
  }
};

struct CongestRunResult {
  core::Verdict verdict;            ///< voters = token packages
  std::uint64_t num_packages = 0;   ///< packages actually formed
  std::uint32_t leader = 0;         ///< engine id of the winning root
  bool quorum_met = true;           ///< resilient mode: coverage >= quorum
  std::uint64_t nodes_reporting = 0;  ///< nodes whose reports reached the root
  net::EngineMetrics metrics;       ///< rounds / messages / bits / faults
};

/// Builds the protocol driver for this plan's CONGEST runs on `graph`:
/// validates feasibility, network size and connectivity once, then hands
/// back a driver whose pooled engines carry the plan's bandwidth budget and
/// round cap. The driver references `graph`; keep the graph alive for the
/// driver's lifetime.
net::ProtocolDriver make_congest_driver(const CongestPlan& plan,
                                        const net::Graph& graph);

/// Full setup factory: validates like make_congest_driver, resolves the
/// resilience schedule from the graph diameter and the plan's tau (all
/// timeouts sit past fault-free completion, so with zero fault rates the
/// verdict stream is bit-identical to the plain protocol's), widens the
/// bandwidth budget for the seq + checksum trailer, and attaches `faults`
/// to the driver (a zero-rate plan when resilient and none is given).
CongestSetup make_congest_setup(const CongestPlan& plan,
                                const net::Graph& graph,
                                const CongestResilience& opts = {},
                                const net::FaultPlan* faults = nullptr);

/// Trial-level entry point: reuses a pooled engine and gates DUT_TRACE
/// resolution with `traced` (pass true for exactly one designated trial
/// when fanning out in parallel). Deterministic per seed at any
/// DUT_THREADS. Node v draws one sample from `sampler` as its token (plus
/// an external id from a seeded permutation for leader election).
[[nodiscard]] CongestRunResult run_congest_uniformity(const CongestPlan& plan,
                                        CongestSetup& setup,
                                        const core::AliasSampler& sampler,
                                        std::uint64_t seed,
                                        bool traced = true);

/// Plain-protocol variant over a bare driver from make_congest_driver.
[[nodiscard]] CongestRunResult run_congest_uniformity(const CongestPlan& plan,
                                        net::ProtocolDriver& driver,
                                        const core::AliasSampler& sampler,
                                        std::uint64_t seed,
                                        bool traced = true);

/// Heterogeneous variant (synthesis of §4's asymmetry with §5's protocol):
/// node v contributes counts[v] samples — e.g. proportional to 1/cost —
/// and the packaging absorbs the imbalance transparently (c(v) < tau
/// regardless of local load). The plan must have been made with
/// samples_per_node equal to the MEAN of counts (so ell matches); the
/// counts must sum to plan.k * plan.samples_per_node.
[[nodiscard]] CongestRunResult run_congest_uniformity_heterogeneous(
    const CongestPlan& plan, net::ProtocolDriver& driver,
    const core::AliasSampler& sampler,
    const std::vector<std::uint64_t>& counts, std::uint64_t seed,
    bool traced = true);

/// Setup-based heterogeneous variant (resilient when the setup is).
[[nodiscard]] CongestRunResult run_congest_uniformity_heterogeneous(
    const CongestPlan& plan, CongestSetup& setup,
    const core::AliasSampler& sampler,
    const std::vector<std::uint64_t>& counts, std::uint64_t seed,
    bool traced = true);

/// Error amplification (paper §3.2.2: the threshold model "is amenable to
/// amplification using standard techniques"): runs `repetitions`
/// independent executions of the protocol — fresh samples, fresh ids,
/// fresh randomness — and returns the majority verdict (voters =
/// repetitions). Per-side error drops from p to
/// exp(-Omega(repetitions * (1/2 - p)^2)); rounds scale linearly in
/// `repetitions` (sequential executions).
struct AmplifiedCongestResult {
  core::Verdict verdict;  ///< voters = repetitions; rounds/bits are totals
  std::uint64_t total_rounds = 0;
  std::uint64_t total_messages = 0;
};
[[nodiscard]] AmplifiedCongestResult run_congest_uniformity_amplified(
    const CongestPlan& plan, net::ProtocolDriver& driver,
    const core::AliasSampler& sampler, std::uint64_t seed,
    std::uint64_t repetitions, bool traced = true);

/// Standalone token packaging (Theorem 5.1), for experiments: every node's
/// token is its own engine id; returns all packages plus metrics.
struct PackagingRunResult {
  std::vector<std::vector<std::uint64_t>> packages;  ///< all packages formed
  std::uint64_t tokens_dropped = 0;
  std::uint32_t leader = 0;
  net::EngineMetrics metrics;
};

/// Driver factory + trial-level variant for token packaging, mirroring the
/// uniformity pair above (tau is baked into the driver's round cap).
net::ProtocolDriver make_packaging_driver(const net::Graph& graph,
                                          std::uint64_t tau);
[[nodiscard]] PackagingRunResult run_token_packaging(net::ProtocolDriver& driver,
                                       std::uint64_t tau, std::uint64_t seed,
                                       bool traced = true);

/// Resilient token packaging: setup factory + runner (tau baked in).
struct PackagingSetup {
  net::ProtocolDriver driver;
  PackagingResilience schedule;
  std::uint64_t tau;

  PackagingSetup(const net::Graph& graph, const net::EngineConfig& config,
                 const PackagingResilience& resolved, std::uint64_t tau_in,
                 const net::FaultPlan* faults)
      : driver(graph, config), schedule(resolved), tau(tau_in) {
    if (faults != nullptr) {
      driver.set_fault_plan(*faults);
    } else if (resolved.enabled) {
      driver.set_fault_plan(net::FaultPlan{});
    }
  }
};
PackagingSetup make_packaging_setup(const net::Graph& graph,
                                    std::uint64_t tau,
                                    const CongestResilience& opts = {},
                                    const net::FaultPlan* faults = nullptr);
[[nodiscard]] PackagingRunResult run_token_packaging(PackagingSetup& setup,
                                       std::uint64_t seed,
                                       bool traced = true);

}  // namespace dut::congest
