#include "dut/core/families.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dut/stats/rng.hpp"

namespace dut::core {

Distribution uniform(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform: n must be positive");
  return Distribution(
      std::vector<double>(n, 1.0 / static_cast<double>(n)));
}

Distribution paninski_two_bump(std::uint64_t n, double eps) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument("paninski_two_bump: n must be even, positive");
  }
  if (eps < 0.0 || eps > 1.0) {
    throw std::invalid_argument("paninski_two_bump: eps must be in [0,1]");
  }
  std::vector<double> pmf(n);
  const double hi = (1.0 + eps) / static_cast<double>(n);
  const double lo = (1.0 - eps) / static_cast<double>(n);
  for (std::uint64_t i = 0; i < n; i += 2) {
    pmf[i] = hi;
    pmf[i + 1] = lo;
  }
  return Distribution(std::move(pmf));
}

Distribution paninski_two_bump_shuffled(std::uint64_t n, double eps,
                                        std::uint64_t seed) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument(
        "paninski_two_bump_shuffled: n must be even, positive");
  }
  if (eps < 0.0 || eps > 1.0) {
    throw std::invalid_argument(
        "paninski_two_bump_shuffled: eps must be in [0,1]");
  }
  std::vector<double> pmf(n);
  const double hi = (1.0 + eps) / static_cast<double>(n);
  const double lo = (1.0 - eps) / static_cast<double>(n);
  stats::Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < n; i += 2) {
    const bool flip = rng.bernoulli(0.5);
    pmf[i] = flip ? lo : hi;
    pmf[i + 1] = flip ? hi : lo;
  }
  return Distribution(std::move(pmf));
}

Distribution heavy_hitter(std::uint64_t n, double heavy_mass) {
  if (n < 2) throw std::invalid_argument("heavy_hitter: n must be >= 2");
  if (heavy_mass < 0.0 || heavy_mass > 1.0) {
    throw std::invalid_argument("heavy_hitter: mass must be in [0,1]");
  }
  std::vector<double> pmf(n, (1.0 - heavy_mass) / static_cast<double>(n - 1));
  pmf[0] = heavy_mass;
  return Distribution(std::move(pmf));
}

Distribution restricted_support(std::uint64_t n, std::uint64_t support) {
  if (support == 0 || support > n) {
    throw std::invalid_argument("restricted_support: need 0 < support <= n");
  }
  std::vector<double> pmf(n, 0.0);
  for (std::uint64_t i = 0; i < support; ++i) {
    pmf[i] = 1.0 / static_cast<double>(support);
  }
  return Distribution(std::move(pmf));
}

Distribution zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n must be positive");
  if (s < 0.0) throw std::invalid_argument("zipf: exponent must be >= 0");
  std::vector<double> weights(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -s);
  }
  return Distribution::from_weights(std::move(weights));
}

Distribution step(std::uint64_t n, double fraction, double ratio) {
  if (n == 0) throw std::invalid_argument("step: n must be positive");
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("step: fraction must be in [0,1]");
  }
  if (ratio <= 0.0) throw std::invalid_argument("step: ratio must be > 0");
  const auto head = static_cast<std::uint64_t>(
      std::ceil(fraction * static_cast<double>(n)));
  std::vector<double> weights(n, 1.0);
  for (std::uint64_t i = 0; i < head; ++i) weights[i] = ratio;
  return Distribution::from_weights(std::move(weights));
}

Distribution mixture(const Distribution& a, const Distribution& b, double w) {
  if (a.n() != b.n()) {
    throw std::invalid_argument("mixture: domain size mismatch");
  }
  if (w < 0.0 || w > 1.0) {
    throw std::invalid_argument("mixture: weight must be in [0,1]");
  }
  std::vector<double> pmf(a.n());
  for (std::uint64_t i = 0; i < a.n(); ++i) {
    pmf[i] = w * a[i] + (1.0 - w) * b[i];
  }
  return Distribution(std::move(pmf));
}

Distribution far_instance(std::uint64_t n, double eps) {
  if (!(eps > 0.0) || eps >= 2.0) {
    throw std::invalid_argument("far_instance: eps must be in (0, 2)");
  }
  if (eps <= 1.0) return paninski_two_bump(n, eps);
  // Uniform over a support of size floor(n*(1 - eps/2)) sits at L1 distance
  // 2*(1 - support/n) >= eps (the floor only pushes it farther).
  const auto support = static_cast<std::uint64_t>(
      std::floor(static_cast<double>(n) * (1.0 - eps / 2.0)));
  if (support == 0) {
    throw std::invalid_argument("far_instance: n too small for this eps");
  }
  return restricted_support(n, support);
}

Distribution at_distance(const Distribution& mu, double target_eps) {
  const double eps = mu.l1_to_uniform();
  if (eps < target_eps) {
    throw std::invalid_argument(
        "at_distance: source distribution is closer to uniform than target");
  }
  if (target_eps < 0.0) {
    throw std::invalid_argument("at_distance: negative target");
  }
  if (eps == 0.0) return mu;
  // Mixing with uniform scales the L1 distance linearly:
  // || w*mu + (1-w)*U - U ||_1 = w * ||mu - U||_1.
  const double w = target_eps / eps;
  return mixture(mu, uniform(mu.n()), w);
}

}  // namespace dut::core
