#include "dut/core/families.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "dut/stats/rng.hpp"

namespace dut::core {

namespace {

/// %.17g round-trips doubles exactly, so factory specs are byte-stable
/// across stamp -> distribution_from_spec -> re-stamp.
std::string format_param(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

Distribution uniform(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform: n must be positive");
  Distribution result(
      std::vector<double>(n, 1.0 / static_cast<double>(n)));
  result.set_spec("uniform:" + std::to_string(n));
  return result;
}

Distribution paninski_two_bump(std::uint64_t n, double eps) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument("paninski_two_bump: n must be even, positive");
  }
  if (eps < 0.0 || eps > 1.0) {
    throw std::invalid_argument("paninski_two_bump: eps must be in [0,1]");
  }
  std::vector<double> pmf(n);
  const double hi = (1.0 + eps) / static_cast<double>(n);
  const double lo = (1.0 - eps) / static_cast<double>(n);
  for (std::uint64_t i = 0; i < n; i += 2) {
    pmf[i] = hi;
    pmf[i + 1] = lo;
  }
  Distribution result(std::move(pmf));
  result.set_spec("two_bump:" + std::to_string(n) + "," + format_param(eps));
  return result;
}

Distribution paninski_two_bump_shuffled(std::uint64_t n, double eps,
                                        std::uint64_t seed) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument(
        "paninski_two_bump_shuffled: n must be even, positive");
  }
  if (eps < 0.0 || eps > 1.0) {
    throw std::invalid_argument(
        "paninski_two_bump_shuffled: eps must be in [0,1]");
  }
  std::vector<double> pmf(n);
  const double hi = (1.0 + eps) / static_cast<double>(n);
  const double lo = (1.0 - eps) / static_cast<double>(n);
  stats::Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < n; i += 2) {
    const bool flip = rng.bernoulli(0.5);
    pmf[i] = flip ? lo : hi;
    pmf[i + 1] = flip ? hi : lo;
  }
  Distribution result(std::move(pmf));
  result.set_spec("two_bump_shuffled:" + std::to_string(n) + "," +
                  format_param(eps) + "," + std::to_string(seed));
  return result;
}

Distribution heavy_hitter(std::uint64_t n, double heavy_mass) {
  if (n < 2) throw std::invalid_argument("heavy_hitter: n must be >= 2");
  if (heavy_mass < 0.0 || heavy_mass > 1.0) {
    throw std::invalid_argument("heavy_hitter: mass must be in [0,1]");
  }
  std::vector<double> pmf(n, (1.0 - heavy_mass) / static_cast<double>(n - 1));
  pmf[0] = heavy_mass;
  Distribution result(std::move(pmf));
  result.set_spec("heavy:" + std::to_string(n) + "," +
                  format_param(heavy_mass));
  return result;
}

Distribution restricted_support(std::uint64_t n, std::uint64_t support) {
  if (support == 0 || support > n) {
    throw std::invalid_argument("restricted_support: need 0 < support <= n");
  }
  std::vector<double> pmf(n, 0.0);
  for (std::uint64_t i = 0; i < support; ++i) {
    pmf[i] = 1.0 / static_cast<double>(support);
  }
  Distribution result(std::move(pmf));
  result.set_spec("support:" + std::to_string(n) + "," +
                  std::to_string(support));
  return result;
}

Distribution zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n must be positive");
  if (s < 0.0) throw std::invalid_argument("zipf: exponent must be >= 0");
  std::vector<double> weights(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -s);
  }
  Distribution result = Distribution::from_weights(std::move(weights));
  result.set_spec("zipf:" + std::to_string(n) + "," + format_param(s));
  return result;
}

Distribution step(std::uint64_t n, double fraction, double ratio) {
  if (n == 0) throw std::invalid_argument("step: n must be positive");
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("step: fraction must be in [0,1]");
  }
  if (ratio <= 0.0) throw std::invalid_argument("step: ratio must be > 0");
  const auto head = static_cast<std::uint64_t>(
      std::ceil(fraction * static_cast<double>(n)));
  std::vector<double> weights(n, 1.0);
  for (std::uint64_t i = 0; i < head; ++i) weights[i] = ratio;
  Distribution result = Distribution::from_weights(std::move(weights));
  result.set_spec("step:" + std::to_string(n) + "," + format_param(fraction) +
                  "," + format_param(ratio));
  return result;
}

Distribution mixture(const Distribution& a, const Distribution& b, double w) {
  if (a.n() != b.n()) {
    throw std::invalid_argument("mixture: domain size mismatch");
  }
  if (w < 0.0 || w > 1.0) {
    throw std::invalid_argument("mixture: weight must be in [0,1]");
  }
  std::vector<double> pmf(a.n());
  for (std::uint64_t i = 0; i < a.n(); ++i) {
    pmf[i] = w * a[i] + (1.0 - w) * b[i];
  }
  return Distribution(std::move(pmf));
}

Distribution far_instance(std::uint64_t n, double eps) {
  if (!(eps > 0.0) || eps >= 2.0) {
    throw std::invalid_argument("far_instance: eps must be in (0, 2)");
  }
  Distribution result = [&] {
    if (eps <= 1.0) return paninski_two_bump(n, eps);
    // Uniform over a support of size floor(n*(1 - eps/2)) sits at L1
    // distance 2*(1 - support/n) >= eps (the floor only pushes it farther).
    const auto support = static_cast<std::uint64_t>(
        std::floor(static_cast<double>(n) * (1.0 - eps / 2.0)));
    if (support == 0) {
      throw std::invalid_argument("far_instance: n too small for this eps");
    }
    return restricted_support(n, support);
  }();
  // Override the inner factory's stamp: the (n, eps) recipe is the
  // reproducible identity here, not which branch realized it.
  result.set_spec("far:" + std::to_string(n) + "," + format_param(eps));
  return result;
}

namespace {

std::uint64_t spec_u64(const std::string& token, const std::string& spec) {
  std::size_t used = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(token, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != token.size() || token.empty()) {
    throw std::invalid_argument("distribution_from_spec: bad integer '" +
                                token + "' in '" + spec + "'");
  }
  return v;
}

double spec_double(const std::string& token, const std::string& spec) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != token.size() || token.empty()) {
    throw std::invalid_argument("distribution_from_spec: bad number '" +
                                token + "' in '" + spec + "'");
  }
  return v;
}

std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = args.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(args.substr(pos));
      return out;
    }
    out.push_back(args.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

}  // namespace

Distribution distribution_from_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("distribution_from_spec: expected FAMILY:ARGS, got '" +
                                spec + "'");
  }
  const std::string family = spec.substr(0, colon);
  const std::vector<std::string> args = split_args(spec.substr(colon + 1));
  const auto expect = [&](std::size_t count) {
    if (args.size() != count) {
      throw std::invalid_argument("distribution_from_spec: '" + family +
                                  "' takes " + std::to_string(count) +
                                  " arguments, got '" + spec + "'");
    }
  };
  if (family == "uniform") {
    expect(1);
    return uniform(spec_u64(args[0], spec));
  }
  if (family == "two_bump") {
    expect(2);
    return paninski_two_bump(spec_u64(args[0], spec), spec_double(args[1], spec));
  }
  if (family == "two_bump_shuffled") {
    expect(3);
    return paninski_two_bump_shuffled(spec_u64(args[0], spec),
                                      spec_double(args[1], spec),
                                      spec_u64(args[2], spec));
  }
  if (family == "heavy") {
    expect(2);
    return heavy_hitter(spec_u64(args[0], spec), spec_double(args[1], spec));
  }
  if (family == "support") {
    expect(2);
    return restricted_support(spec_u64(args[0], spec), spec_u64(args[1], spec));
  }
  if (family == "zipf") {
    expect(2);
    return zipf(spec_u64(args[0], spec), spec_double(args[1], spec));
  }
  if (family == "step") {
    expect(3);
    return step(spec_u64(args[0], spec), spec_double(args[1], spec),
                spec_double(args[2], spec));
  }
  if (family == "far") {
    expect(2);
    return far_instance(spec_u64(args[0], spec), spec_double(args[1], spec));
  }
  throw std::invalid_argument("distribution_from_spec: unknown family '" +
                              family + "'");
}

Distribution at_distance(const Distribution& mu, double target_eps) {
  const double eps = mu.l1_to_uniform();
  if (eps < target_eps) {
    throw std::invalid_argument(
        "at_distance: source distribution is closer to uniform than target");
  }
  if (target_eps < 0.0) {
    throw std::invalid_argument("at_distance: negative target");
  }
  if (eps == 0.0) return mu;
  // Mixing with uniform scales the L1 distance linearly:
  // || w*mu + (1-w)*U - U ||_1 = w * ||mu - U||_1.
  const double w = target_eps / eps;
  return mixture(mu, uniform(mu.n()), w);
}

}  // namespace dut::core
