#include "dut/core/estimators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "dut/core/gap_tester.hpp"

namespace dut::core {

ChiEstimate estimate_chi(std::span<const std::uint64_t> samples) {
  if (samples.size() < 2) {
    throw std::invalid_argument("estimate_chi: need at least two samples");
  }
  // One sorted pass yields pair and triple collision counts.
  std::vector<std::uint64_t> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  double pairs = 0.0;
  double triples = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    const double m = static_cast<double>(j - i);
    pairs += m * (m - 1.0) / 2.0;
    triples += m * (m - 1.0) * (m - 2.0) / 6.0;
    i = j;
  }

  const auto s = static_cast<double>(samples.size());
  const double total_pairs = s * (s - 1.0) / 2.0;
  ChiEstimate estimate;
  estimate.samples = samples.size();
  estimate.chi_hat = pairs / total_pairs;
  estimate.lambda_hat =
      s >= 3.0 ? triples / (s * (s - 1.0) * (s - 2.0) / 6.0) : 0.0;
  // Exact U-statistic variance with plug-in moments; the lambda term
  // carries the correlation between overlapping pairs.
  const double chi = estimate.chi_hat;
  const double variance =
      (chi * (1.0 - chi) +
       2.0 * (s - 2.0) * std::max(0.0, estimate.lambda_hat - chi * chi)) /
      total_pairs;
  estimate.std_error = std::sqrt(std::max(0.0, variance));
  return estimate;
}

double collision_distance_score(double chi_hat, std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("collision_distance_score: n = 0");
  if (chi_hat < 0.0 || chi_hat > 1.0) {
    throw std::invalid_argument(
        "collision_distance_score: chi_hat outside [0, 1]");
  }
  return std::sqrt(
      std::max(0.0, chi_hat * static_cast<double>(n) - 1.0));
}

double plugin_l1_to_uniform(std::span<const std::uint64_t> samples,
                            std::uint64_t n) {
  if (n == 0 || samples.empty()) {
    throw std::invalid_argument("plugin_l1_to_uniform: empty input");
  }
  // Count multiplicities without allocating O(n): sort a copy.
  std::vector<std::uint64_t> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double s = static_cast<double>(samples.size());
  const double u = 1.0 / static_cast<double>(n);
  double distance = 0.0;
  std::uint64_t seen_values = 0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    if (sorted[i] >= n) {
      throw std::invalid_argument("plugin_l1_to_uniform: sample >= n");
    }
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    distance += std::abs(static_cast<double>(j - i) / s - u);
    ++seen_values;
    i = j;
  }
  // Elements never sampled each contribute |0 - 1/n|.
  distance += static_cast<double>(n - seen_values) * u;
  return distance;
}

SupportEstimate estimate_support(std::span<const std::uint64_t> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("estimate_support: empty input");
  }
  std::vector<std::uint64_t> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  SupportEstimate estimate;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    ++estimate.distinct;
    if (j - i == 1) ++estimate.singletons;
    i = j;
  }
  estimate.unseen_mass = static_cast<double>(estimate.singletons) /
                         static_cast<double>(samples.size());
  return estimate;
}

}  // namespace dut::core
