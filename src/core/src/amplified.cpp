#include "dut/core/amplified.hpp"

#include <cmath>
#include <stdexcept>

namespace dut::core {

RepeatedGapTester::RepeatedGapTester(GapTesterParams base,
                                     std::uint64_t repetitions)
    : base_(base), repetitions_(repetitions) {
  if (repetitions_ == 0) {
    throw std::invalid_argument("RepeatedGapTester: repetitions must be >= 1");
  }
}

double RepeatedGapTester::delta() const noexcept {
  return std::pow(base_.params().delta, static_cast<double>(repetitions_));
}

double RepeatedGapTester::alpha() const noexcept {
  return std::pow(base_.params().alpha, static_cast<double>(repetitions_));
}

bool RepeatedGapTester::decide(std::span<const std::uint64_t> samples) const {
  const std::uint64_t s = base_.params().s;
  if (samples.size() < total_samples()) {
    throw std::invalid_argument("RepeatedGapTester::decide: too few samples");
  }
  for (std::uint64_t r = 0; r < repetitions_; ++r) {
    if (base_.accept(samples.subspan(r * s, s))) return true;
  }
  return false;
}

bool RepeatedGapTester::run(const AliasSampler& sampler,
                            stats::Xoshiro256& rng) const {
  // Accept as soon as one repetition accepts (saw no collision); reject only
  // if all m repetitions reject. Early exit preserves the exact distribution
  // of the decision while saving samples on the (overwhelmingly common)
  // accept path.
  for (std::uint64_t r = 0; r < repetitions_; ++r) {
    if (base_.run(sampler, rng)) return true;
  }
  return false;
}

}  // namespace dut::core
