#include "dut/core/asymmetric.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "dut/stats/bounds.hpp"

namespace dut::core {

namespace {

void validate_costs(std::span<const double> costs) {
  if (costs.empty()) {
    throw std::invalid_argument("asymmetric planner: empty cost vector");
  }
  for (const double c : costs) {
    if (!(c > 0.0)) {
      throw std::invalid_argument(
          "asymmetric planner: costs must be strictly positive");
    }
  }
}

/// Placeholder for a node whose cost share admits fewer than two samples:
/// it draws nothing and always accepts (delta_i = 0).
GapTesterParams inactive_params(std::uint64_t n, double epsilon) {
  GapTesterParams p;
  p.n = n;
  p.epsilon = epsilon;
  p.s = 0;
  p.delta = 0.0;
  p.delta_requested = 0.0;
  p.gamma = 0.0;
  p.alpha = 1.0;
  p.in_paper_domain = false;
  p.has_gap = false;
  return p;
}

}  // namespace

double inverse_cost_norm(std::span<const double> costs, double order) {
  validate_costs(costs);
  if (!(order > 0.0)) {
    throw std::invalid_argument("inverse_cost_norm: order must be > 0");
  }
  // Compute relative to the max to avoid overflow for large orders.
  double max_t = 0.0;
  for (const double c : costs) max_t = std::max(max_t, 1.0 / c);
  double sum = 0.0;
  for (const double c : costs) {
    sum += std::pow((1.0 / c) / max_t, order);
  }
  return max_t * std::pow(sum, 1.0 / order);
}

Lemma41Sides lemma41_sides(std::span<const double> x, double a) {
  if (x.empty()) throw std::invalid_argument("lemma41_sides: empty vector");
  if (!(a > 1.0)) throw std::invalid_argument("lemma41_sides: need a > 1");
  double log_c = 0.0;
  double g_x = 1.0;
  for (const double xi : x) {
    if (xi < 0.0 || xi >= 1.0) {
      throw std::invalid_argument("lemma41_sides: x_i must be in [0, 1)");
    }
    log_c += std::log1p(-xi);
    g_x *= 1.0 - a * xi;
  }
  const double d =
      -std::expm1(log_c / static_cast<double>(x.size()));  // 1 - c^{1/k}
  const double g_y =
      std::pow(1.0 - a * d, static_cast<double>(x.size()));
  return Lemma41Sides{g_x, g_y};
}

// ---------------------------------------------------------------------------
// Threshold rule with costs
// ---------------------------------------------------------------------------

namespace {

struct AsymThresholdAttempt {
  std::vector<GapTesterParams> node_params;
  std::uint64_t threshold;
  double eta_u;
  double eta_f;
  double budget;
  double bound_false_reject;
  double bound_false_accept;
};

std::optional<AsymThresholdAttempt> attempt_asymmetric_threshold(
    std::uint64_t n, std::span<const double> costs, double eps, double p,
    double A) {
  const double norm2 = inverse_cost_norm(costs, 2.0);
  // Paper Section 4.2: delta_i = C^2 T_i^2 / (2n) with sum delta_i = A gives
  // C = sqrt(2 n A) / ||T||_2 and s_i = C * T_i.
  const double C = std::sqrt(2.0 * static_cast<double>(n) * A) / norm2;

  std::vector<GapTesterParams> node_params;
  node_params.reserve(costs.size());
  double eta_u = 0.0;
  double eta_f = 0.0;
  for (const double cost : costs) {
    const auto s = static_cast<std::uint64_t>(std::llround(C / cost));
    if (s < 2) {
      node_params.push_back(inactive_params(n, eps));
      continue;
    }
    GapTesterParams params = params_from_samples(n, eps, s);
    if (!params.has_gap) return std::nullopt;  // this node's share is too big
    eta_u += params.delta;
    eta_f += params.alpha * params.delta;
    node_params.push_back(params);
  }
  if (eta_f <= eta_u || eta_u <= 0.0) return std::nullopt;

  // Chernoff threshold placement, eq. (5); the bounds hold for
  // Poisson-binomial reject counts as well.
  const double L = std::log(1.0 / p);
  const double t_lo = eta_u + std::sqrt(3.0 * L * eta_u);
  const double t_hi = eta_f - std::sqrt(2.0 * L * eta_f);
  const double t_ceil = std::ceil(t_lo);
  if (t_ceil > t_hi || t_ceil > static_cast<double>(costs.size())) {
    return std::nullopt;
  }
  const auto T = static_cast<std::uint64_t>(t_ceil);
  if (T == 0) return std::nullopt;
  return AsymThresholdAttempt{
      std::move(node_params),
      T,
      eta_u,
      eta_f,
      eta_u,
      stats::chernoff_upper_tail(eta_u, static_cast<double>(T)),
      stats::chernoff_lower_tail(eta_f, static_cast<double>(T))};
}

}  // namespace

AsymmetricThresholdPlan plan_asymmetric_threshold(std::uint64_t n,
                                                  std::vector<double> costs,
                                                  double epsilon, double p) {
  validate_costs(costs);
  if (n < 2) throw std::invalid_argument("plan: n must be >= 2");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("plan: eps must be in (0, 2]");
  }
  if (!(p > 0.0) || p >= 0.5) {
    throw std::invalid_argument("plan: p must be in (0, 0.5)");
  }

  AsymmetricThresholdPlan plan;
  plan.n = n;
  plan.epsilon = epsilon;
  plan.p = p;
  plan.costs = std::move(costs);

  // Same closed-form seed as the symmetric planner (gamma target 1/2).
  const double L = std::log(1.0 / p);
  const double g = 0.5 * epsilon * epsilon;
  const double a = std::sqrt(3.0 * L);
  const double b = std::sqrt(2.0 * L * (1.0 + g));
  const double seed = ((a + b) / g) * ((a + b) / g);

  for (double A = seed / 32.0; A <= seed * 32.0; A *= 1.05) {
    if (A > static_cast<double>(plan.costs.size())) break;
    auto attempt =
        attempt_asymmetric_threshold(n, plan.costs, epsilon, p, A);
    if (!attempt) continue;
    plan.feasible = true;
    plan.node_params = std::move(attempt->node_params);
    plan.threshold = attempt->threshold;
    plan.budget = attempt->budget;
    plan.eta_uniform = attempt->eta_u;
    plan.eta_far = attempt->eta_f;
    plan.bound_false_reject = attempt->bound_false_reject;
    plan.bound_false_accept = attempt->bound_false_accept;
    const double norm2 = inverse_cost_norm(plan.costs, 2.0);
    plan.predicted_max_cost =
        std::sqrt(2.0 * static_cast<double>(n) * A) / norm2;
    for (std::size_t i = 0; i < plan.costs.size(); ++i) {
      plan.max_cost =
          std::max(plan.max_cost, static_cast<double>(plan.node_params[i].s) *
                                      plan.costs[i]);
    }
    return plan;
  }

  plan.feasible = false;
  plan.infeasible_reason =
      "no rejection budget admits a threshold; the cost profile leaves too "
      "little total sampling power for this (n, eps, p)";
  return plan;
}

Verdict run_asymmetric_threshold_network(const AsymmetricThresholdPlan& plan,
                                         const AliasSampler& sampler,
                                         stats::Xoshiro256& rng) {
  if (!plan.feasible) {
    throw std::logic_error("run_asymmetric_threshold_network: infeasible");
  }
  if (sampler.n() != plan.n) {
    throw std::invalid_argument("run_asymmetric_threshold_network: domain");
  }
  std::uint64_t rejecting = 0;
  for (const GapTesterParams& params : plan.node_params) {
    if (params.s < 2) continue;  // inactive node always accepts
    const SingleCollisionTester tester(params);
    if (!tester.run(sampler, rng)) ++rejecting;
  }
  return Verdict::make(rejecting < plan.threshold, rejecting,
                       plan.node_params.size());
}

// ---------------------------------------------------------------------------
// AND rule with costs
// ---------------------------------------------------------------------------

AsymmetricAndPlan plan_asymmetric_and(std::uint64_t n,
                                      std::vector<double> costs,
                                      double epsilon, double p,
                                      std::uint64_t max_repetitions) {
  validate_costs(costs);
  if (n < 2) throw std::invalid_argument("plan: n must be >= 2");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("plan: eps must be in (0, 2]");
  }
  if (!(p > 0.0) || p >= 0.5) {
    throw std::invalid_argument("plan: p must be in (0, 0.5)");
  }

  AsymmetricAndPlan plan;
  plan.n = n;
  plan.epsilon = epsilon;
  plan.p = p;
  plan.costs = std::move(costs);
  const std::size_t k = plan.costs.size();

  double max_t = 0.0;
  for (const double c : plan.costs) max_t = std::max(max_t, 1.0 / c);

  std::optional<AsymmetricAndPlan> best;
  for (std::uint64_t m = 1; m <= max_repetitions; ++m) {
    // Responsibility shape: delta_i proportional to T_i^{2m} (paper §4.1),
    // normalized against the cheapest node to stay in floating-point range.
    std::vector<double> shape(k);
    for (std::size_t i = 0; i < k; ++i) {
      shape[i] = std::pow((1.0 / plan.costs[i]) / max_t,
                          2.0 * static_cast<double>(m));
    }

    // Scale theta so the network completeness product is exactly 1 - p:
    // prod_i (1 - theta * shape_i) = 1 - p. Monotone in theta => bisection.
    const double target = std::log1p(-p);
    auto log_product = [&](double theta) -> double {
      double sum = 0.0;
      for (const double w : shape) {
        const double d = theta * w;
        if (d >= 1.0) return -INFINITY;
        sum += std::log1p(-d);
      }
      return sum;
    };
    double lo = 0.0;
    double hi = 1.0;
    if (log_product(hi) > target) continue;  // even theta=1 too gentle
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = (lo + hi) / 2.0;
      if (log_product(mid) > target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double theta = lo;

    // Instantiate node testers at delta_i' = delta_i^{1/m}, rounding s down
    // so the effective completeness can only improve.
    std::vector<GapTesterParams> node_params;
    std::vector<std::uint64_t> samples;
    node_params.reserve(k);
    samples.reserve(k);
    double log_complete = 0.0;  // log prod (1 - delta_eff_i^m)
    double log_sound = 0.0;     // log prod (1 - (alpha_i*delta_eff_i')^m)
    double max_cost = 0.0;
    bool usable = true;
    for (std::size_t i = 0; i < k; ++i) {
      const double delta_i = theta * shape[i];
      const double delta_run =
          std::pow(delta_i, 1.0 / static_cast<double>(m));
      GapTesterParams params;
      bool active = delta_run > 0.0 && delta_run < 1.0;
      if (active) {
        params = solve_gap_tester(n, epsilon, delta_run, Rounding::kDown);
        if (params.delta > delta_run || params.s < 2) active = false;
      }
      if (!active) {
        node_params.push_back(inactive_params(n, epsilon));
        samples.push_back(0);
        continue;
      }
      if (!params.has_gap) {
        usable = false;  // a node's share breaks the gap domain
        break;
      }
      node_params.push_back(params);
      samples.push_back(m * params.s);
      const double md = static_cast<double>(m);
      log_complete += std::log1p(-std::pow(params.delta, md));
      log_sound += std::log1p(-std::pow(params.alpha * params.delta, md));
      max_cost = std::max(
          max_cost, static_cast<double>(m * params.s) * plan.costs[i]);
    }
    if (!usable) continue;

    const double completeness = std::exp(log_complete);
    const double soundness_accept = std::exp(log_sound);
    if (completeness < 1.0 - p) continue;      // should hold by construction
    if (soundness_accept > p) continue;        // gap too weak at this m

    AsymmetricAndPlan candidate = plan;
    candidate.feasible = true;
    candidate.repetitions = m;
    candidate.node_params = std::move(node_params);
    candidate.samples_per_node = std::move(samples);
    candidate.max_cost = max_cost;
    candidate.guaranteed_completeness = completeness;
    candidate.guaranteed_soundness = 1.0 - soundness_accept;
    if (!best || candidate.max_cost < best->max_cost) {
      best = std::move(candidate);
    }
  }

  if (!best) {
    plan.feasible = false;
    plan.infeasible_reason =
        "no repetition count yields both error bounds under this cost "
        "profile; the AND-rule regime needs larger n or cheaper nodes";
    return plan;
  }
  return *best;
}

Verdict run_asymmetric_and_network(const AsymmetricAndPlan& plan,
                                   const AliasSampler& sampler,
                                   stats::Xoshiro256& rng) {
  if (!plan.feasible) {
    throw std::logic_error("run_asymmetric_and_network: infeasible");
  }
  if (sampler.n() != plan.n) {
    throw std::invalid_argument("run_asymmetric_and_network: domain");
  }
  std::uint64_t rejecting = 0;
  for (const GapTesterParams& params : plan.node_params) {
    if (params.s < 2) continue;  // inactive node always accepts
    const RepeatedGapTester tester(params, plan.repetitions);
    if (!tester.run(sampler, rng)) ++rejecting;
  }
  return Verdict::make(rejecting == 0, rejecting, plan.node_params.size());
}

}  // namespace dut::core
