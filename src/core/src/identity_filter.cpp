#include "dut/core/identity_filter.hpp"

#include <cmath>
#include <stdexcept>

namespace dut::core {

IdentityFilter::IdentityFilter(Distribution q, double eps,
                               double grains_per_eps)
    : q_(std::move(q)), eps_(eps) {
  if (!(eps > 0.0) || eps > 2.0) {
    throw std::invalid_argument("IdentityFilter: eps must be in (0, 2]");
  }
  if (grains_per_eps < 4.0) {
    // Below 4 grains per eps the distance guarantee degenerates (m < 4n/eps
    // gives output_epsilon <= 0 in the worst case).
    throw std::invalid_argument("IdentityFilter: grains_per_eps must be >= 4");
  }
  const std::uint64_t n = q_.n();
  const double nd = static_cast<double>(n);
  m_ = static_cast<std::uint64_t>(
      std::ceil(grains_per_eps * nd / eps));

  // Mixed reference q~_i = (q_i + 1/n)/2, all >= 1/(2n).
  bucket_size_.resize(n);
  bucket_offset_.resize(n);
  bucket_probability_.resize(n);
  const double md = static_cast<double>(m_);
  std::uint64_t used = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double q_mixed = (q_[i] + 1.0 / nd) / 2.0;
    const auto grains = static_cast<std::uint64_t>(std::floor(q_mixed * md));
    bucket_size_[i] = grains;
    bucket_offset_[i] = used;
    used += grains;
    // floor() guarantees grains/m <= q_mixed, so this is a probability.
    bucket_probability_[i] =
        grains == 0 ? 0.0 : static_cast<double>(grains) / (md * q_mixed);
  }
  overflow_offset_ = used;
  overflow_size_ = m_ - used;

  // Distance retention: every bucket keeps at least beta = 1 - 2n/m of its
  // discrepancy |mu~_i - q~_i| (floor error is < 1/m against mass >= 1/(2n)),
  // and the input discrepancy is eps/2 after mixing.
  output_epsilon_ = (1.0 - 2.0 * nd / md) * eps / 2.0;
}

std::uint64_t IdentityFilter::apply(std::uint64_t sample,
                                    stats::Xoshiro256& rng) const {
  const std::uint64_t n = q_.n();
  if (sample >= n) {
    throw std::invalid_argument("IdentityFilter::apply: sample out of domain");
  }
  // Step 1 — mixing with the uniform distribution (private randomness).
  const std::uint64_t i = rng.bernoulli(0.5) ? rng.below(n) : sample;
  // Step 3 — proportional routing into bucket i or the overflow region.
  if (overflow_size_ == 0 || rng.uniform01() < bucket_probability_[i]) {
    return bucket_offset_[i] + rng.below(bucket_size_[i]);
  }
  return overflow_offset_ + rng.below(overflow_size_);
}

Distribution IdentityFilter::pushforward(const Distribution& mu) const {
  if (mu.n() != q_.n()) {
    throw std::invalid_argument("pushforward: domain mismatch");
  }
  const std::uint64_t n = q_.n();
  const double nd = static_cast<double>(n);
  std::vector<double> out(m_, 0.0);
  double overflow_mass = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double mu_mixed = (mu[i] + 1.0 / nd) / 2.0;
    const double to_bucket = mu_mixed * bucket_probability_[i];
    if (bucket_size_[i] > 0) {
      const double per_grain =
          to_bucket / static_cast<double>(bucket_size_[i]);
      for (std::uint64_t g = 0; g < bucket_size_[i]; ++g) {
        out[bucket_offset_[i] + g] = per_grain;
      }
    }
    overflow_mass += mu_mixed - to_bucket;
  }
  if (overflow_size_ > 0) {
    const double per_grain =
        overflow_mass / static_cast<double>(overflow_size_);
    for (std::uint64_t g = 0; g < overflow_size_; ++g) {
      out[overflow_offset_ + g] = per_grain;
    }
  }
  return Distribution(std::move(out));
}

}  // namespace dut::core
