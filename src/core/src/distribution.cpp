#include "dut/core/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "dut/stats/info.hpp"

namespace dut::core {

namespace {
constexpr double kMassTolerance = 1e-9;
}

Distribution::Distribution(std::vector<double> pmf) : pmf_(std::move(pmf)) {
  if (pmf_.empty()) {
    throw std::invalid_argument("Distribution: empty pmf");
  }
  double total = 0.0;
  for (const double p : pmf_) {
    if (!(p >= 0.0) || p > 1.0 + kMassTolerance) {
      throw std::invalid_argument("Distribution: pmf entry outside [0,1]");
    }
    total += p;
  }
  if (std::abs(total - 1.0) > kMassTolerance * static_cast<double>(n())) {
    throw std::invalid_argument("Distribution: pmf does not sum to 1");
  }
}

Distribution Distribution::from_weights(std::vector<double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0)) {
      throw std::invalid_argument("from_weights: negative or NaN weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("from_weights: zero total weight");
  }
  for (double& w : weights) w /= total;
  return Distribution(std::move(weights));
}

double Distribution::l1_distance(const Distribution& other) const {
  if (other.n() != n()) {
    throw std::invalid_argument("l1_distance: domain size mismatch");
  }
  double total = 0.0;
  for (std::uint64_t i = 0; i < n(); ++i) {
    total += std::abs(pmf_[i] - other.pmf_[i]);
  }
  return total;
}

double Distribution::l1_to_uniform() const noexcept {
  const double u = 1.0 / static_cast<double>(n());
  double total = 0.0;
  for (const double p : pmf_) total += std::abs(p - u);
  return total;
}

double Distribution::collision_probability() const noexcept {
  double chi = 0.0;
  for (const double p : pmf_) chi += p * p;
  return chi;
}

double Distribution::kl_to(const Distribution& other) const {
  if (other.n() != n()) {
    throw std::invalid_argument("kl_to: domain size mismatch");
  }
  return stats::kl_divergence(pmf(), other.pmf());
}

double Distribution::entropy() const noexcept { return stats::entropy(pmf()); }

std::uint64_t Distribution::support_size() const noexcept {
  return static_cast<std::uint64_t>(
      std::count_if(pmf_.begin(), pmf_.end(), [](double p) { return p > 0; }));
}

double Distribution::min_probability() const noexcept {
  return *std::min_element(pmf_.begin(), pmf_.end());
}

double Distribution::max_probability() const noexcept {
  return *std::max_element(pmf_.begin(), pmf_.end());
}

double lemma32_ratio(const Distribution& mu) {
  const double eps = mu.l1_to_uniform();
  const double bound =
      (1.0 + eps * eps) / static_cast<double>(mu.n());
  return mu.collision_probability() / bound;
}

}  // namespace dut::core
