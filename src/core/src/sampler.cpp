#include "dut/core/sampler.hpp"

#include <vector>

namespace dut::core {

AliasSampler::AliasSampler(const Distribution& distribution)
    : probability_(distribution.n()), alias_(distribution.n()) {
  const std::uint64_t n = distribution.n();
  const double nd = static_cast<double>(n);

  // Vose's method: scale each mass by n, then pair "small" columns (scaled
  // mass < 1) with "large" ones so every column is filled to exactly 1.
  std::vector<double> scaled(n);
  std::vector<std::uint64_t> small;
  std::vector<std::uint64_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    scaled[i] = distribution[i] * nd;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::uint64_t s = small.back();
    small.pop_back();
    const std::uint64_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are numerically 1.0 columns.
  for (const std::uint64_t i : small) {
    probability_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint64_t i : large) {
    probability_[i] = 1.0;
    alias_[i] = i;
  }
}

std::uint64_t AliasSampler::sample(stats::Xoshiro256& rng) const noexcept {
  const std::uint64_t column = rng.below(n());
  return rng.uniform01() < probability_[column] ? column : alias_[column];
}

std::vector<std::uint64_t> AliasSampler::sample_many(
    stats::Xoshiro256& rng, std::uint64_t count) const {
  std::vector<std::uint64_t> out;
  sample_into(rng, count, out);
  return out;
}

void AliasSampler::sample_into(stats::Xoshiro256& rng, std::uint64_t count,
                               std::vector<std::uint64_t>& out) const {
  out.clear();
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(sample(rng));
}

}  // namespace dut::core
