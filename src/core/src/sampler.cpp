#include "dut/core/sampler.hpp"

#include <vector>

namespace dut::core {

AliasSampler::AliasSampler(const Distribution& distribution)
    : slots_(distribution.n()), spec_(distribution.spec()) {
  const std::uint64_t n = distribution.n();
  const double nd = static_cast<double>(n);

  // Vose's method: scale each mass by n, then pair "small" columns (scaled
  // mass < 1) with "large" ones so every column is filled to exactly 1.
  std::vector<double> scaled(n);
  std::vector<std::uint64_t> small;
  std::vector<std::uint64_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    scaled[i] = distribution[i] * nd;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::uint64_t s = small.back();
    small.pop_back();
    const std::uint64_t l = large.back();
    large.pop_back();
    slots_[s].probability = scaled[s];
    slots_[s].alias = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are numerically 1.0 columns.
  for (const std::uint64_t i : small) {
    slots_[i].probability = 1.0;
    slots_[i].alias = i;
  }
  for (const std::uint64_t i : large) {
    slots_[i].probability = 1.0;
    slots_[i].alias = i;
  }
}

std::vector<std::uint64_t> AliasSampler::sample_many(
    stats::Xoshiro256& rng, std::uint64_t count) const {
  std::vector<std::uint64_t> out;
  sample_into(rng, count, out);
  return out;
}

void AliasSampler::sample_into(stats::Xoshiro256& rng, std::uint64_t count,
                               std::vector<std::uint64_t>& out) const {
  out.resize(count);
  std::uint64_t* dst = out.data();

  constexpr std::uint64_t kBlock = 64;
  std::uint64_t raw[kBlock];
  std::uint64_t remaining = count;
  while (remaining >= kBlock) {
    // Draw the whole block first: the RNG recurrence is the only serial
    // dependency chain, so the table lookups below overlap freely.
    for (std::uint64_t i = 0; i < kBlock; ++i) raw[i] = rng();
    for (std::uint64_t i = 0; i < kBlock; ++i) dst[i] = resolve(raw[i]);
    dst += kBlock;
    remaining -= kBlock;
  }
  for (std::uint64_t i = 0; i < remaining; ++i) dst[i] = resolve(rng());
}

}  // namespace dut::core
