#include "dut/core/gap_tester.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dut::core {

namespace {

bool sorted_has_collision(std::span<const std::uint64_t> samples,
                          std::vector<std::uint64_t>& scratch) {
  scratch.assign(samples.begin(), samples.end());
  std::sort(scratch.begin(), scratch.end());
  return std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end();
}

std::uint64_t sorted_count_colliding_pairs(
    std::span<const std::uint64_t> samples,
    std::vector<std::uint64_t>& scratch) {
  scratch.assign(samples.begin(), samples.end());
  std::sort(scratch.begin(), scratch.end());
  std::uint64_t pairs = 0;
  std::size_t i = 0;
  while (i < scratch.size()) {
    std::size_t j = i;
    while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
    const std::uint64_t m = j - i;
    pairs += m * (m - 1) / 2;
    i = j;
  }
  return pairs;
}

}  // namespace

bool has_collision(std::span<const std::uint64_t> samples) {
  std::vector<std::uint64_t> scratch;
  return sorted_has_collision(samples, scratch);
}

std::uint64_t count_colliding_pairs(std::span<const std::uint64_t> samples) {
  std::vector<std::uint64_t> scratch;
  return sorted_count_colliding_pairs(samples, scratch);
}

bool CollisionWorkspace::bitmap_has_collision(
    std::span<const std::uint64_t> samples, std::uint64_t n) {
  const std::size_t words = static_cast<std::size_t>((n + 63) / 64);
  if (bits_.size() < words) bits_.resize(words, 0);

  std::size_t marked = 0;
  bool found = false;
  for (; marked < samples.size(); ++marked) {
    const std::uint64_t x = samples[marked];
    if (x >= n) break;  // out-of-contract value: undo and fall back to sort
    const std::uint64_t mask = 1ULL << (x & 63);
    std::uint64_t& word = bits_[x >> 6];
    if (word & mask) {
      found = true;
      break;
    }
    word |= mask;
  }
  // Unmark only what was touched: O(s), the full bitmap is never rescanned.
  const bool clean = marked == samples.size() || found;
  for (std::size_t i = 0; i < marked; ++i) {
    const std::uint64_t x = samples[i];
    bits_[x >> 6] &= ~(1ULL << (x & 63));
  }
  if (!clean) return sorted_has_collision(samples, scratch_);
  return found;
}

bool CollisionWorkspace::has_collision(std::span<const std::uint64_t> samples,
                                       std::uint64_t n) {
  if (n == 0 || n > kMaxBitmapDomain) {
    return sorted_has_collision(samples, scratch_);
  }
  return bitmap_has_collision(samples, n);
}

std::uint64_t CollisionWorkspace::count_colliding_pairs(
    std::span<const std::uint64_t> samples, std::uint64_t n) {
  if (n == 0 || n > kMaxCountDomain) {
    return sorted_count_colliding_pairs(samples, scratch_);
  }
  for (const std::uint64_t x : samples) {
    if (x >= n) return sorted_count_colliding_pairs(samples, scratch_);
  }
  if (counts_.size() < n) counts_.resize(static_cast<std::size_t>(n), 0);

  // Incremental pair count: inserting a value with multiplicity m so far
  // creates m new colliding pairs.
  std::uint64_t pairs = 0;
  for (const std::uint64_t x : samples) {
    pairs += counts_[static_cast<std::size_t>(x)]++;
  }
  for (const std::uint64_t x : samples) {
    counts_[static_cast<std::size_t>(x)] = 0;
  }
  return pairs;
}

CollisionWorkspace& thread_collision_workspace() {
  // dut-lint: allow(no-mutable-static): per-thread collision scratch (PR1
  // design); kernels reset marks before use, results are reuse-independent.
  static thread_local CollisionWorkspace workspace;
  return workspace;
}

bool has_collision(std::span<const std::uint64_t> samples, std::uint64_t n) {
  return thread_collision_workspace().has_collision(samples, n);
}

std::uint64_t count_colliding_pairs(std::span<const std::uint64_t> samples,
                                    std::uint64_t n) {
  return thread_collision_workspace().count_colliding_pairs(samples, n);
}

double gap_slack_gamma(std::uint64_t s, double delta, double epsilon) {
  if (s < 2) return -INFINITY;
  const double root = std::sqrt(2.0 * delta * (1.0 + epsilon * epsilon));
  const double inv_s = 1.0 / static_cast<double>(s);
  return 1.0 - inv_s - root - (inv_s + root) / (epsilon * epsilon);
}

GapTesterParams solve_gap_tester(std::uint64_t n, double epsilon, double delta,
                                 Rounding rounding) {
  if (n < 2) throw std::invalid_argument("solve_gap_tester: n must be >= 2");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("solve_gap_tester: eps must be in (0, 2]");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    throw std::invalid_argument("solve_gap_tester: delta must be in (0, 1)");
  }

  // Real solution of s(s-1) = 2*delta*n:  s = (1 + sqrt(1 + 8*delta*n)) / 2.
  const double target = 2.0 * delta * static_cast<double>(n);
  const double s_real = (1.0 + std::sqrt(1.0 + 4.0 * target)) / 2.0;
  std::uint64_t s = 0;
  switch (rounding) {
    case Rounding::kDown:
      s = static_cast<std::uint64_t>(std::floor(s_real));
      break;
    case Rounding::kNearest:
      s = static_cast<std::uint64_t>(std::llround(s_real));
      break;
    case Rounding::kUp:
      s = static_cast<std::uint64_t>(std::ceil(s_real));
      break;
  }
  if (s < 2) s = 2;  // one sample can never collide

  GapTesterParams p;
  p.n = n;
  p.epsilon = epsilon;
  p.delta_requested = delta;
  p.s = s;
  p.delta = static_cast<double>(s) * static_cast<double>(s - 1) /
            (2.0 * static_cast<double>(n));
  p.gamma = gap_slack_gamma(s, p.delta, epsilon);
  p.alpha = 1.0 + p.gamma * epsilon * epsilon;
  const double eps4 = std::pow(epsilon, 4.0);
  p.in_paper_domain = p.delta < eps4 / 64.0 &&
                      static_cast<double>(n) > 64.0 / (eps4 * p.delta);
  p.has_gap = p.gamma > 0.0;
  return p;
}

GapTesterParams params_from_samples(std::uint64_t n, double epsilon,
                                    std::uint64_t s) {
  if (n < 2) throw std::invalid_argument("params_from_samples: n must be >= 2");
  if (s < 2) throw std::invalid_argument("params_from_samples: s must be >= 2");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("params_from_samples: eps must be in (0, 2]");
  }
  GapTesterParams p;
  p.n = n;
  p.epsilon = epsilon;
  p.s = s;
  p.delta = static_cast<double>(s) * static_cast<double>(s - 1) /
            (2.0 * static_cast<double>(n));
  p.delta_requested = p.delta;
  p.gamma = gap_slack_gamma(s, p.delta, epsilon);
  p.alpha = 1.0 + p.gamma * epsilon * epsilon;
  const double eps4 = std::pow(epsilon, 4.0);
  p.in_paper_domain = p.delta < eps4 / 64.0 &&
                      static_cast<double>(n) > 64.0 / (eps4 * p.delta);
  p.has_gap = p.gamma > 0.0;
  return p;
}

double wiener_no_collision_bound(std::uint64_t s, double chi) {
  if (chi < 0.0 || chi > 1.0) {
    throw std::invalid_argument("wiener bound: chi must be in [0,1]");
  }
  if (s < 2) return 1.0;
  const double t = static_cast<double>(s - 1) * std::sqrt(chi);
  return std::exp(-t) * (1.0 + t);
}

double uniform_no_collision_exact(std::uint64_t s, std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_no_collision_exact: n=0");
  if (s > n) return 0.0;
  double prob = 1.0;
  for (std::uint64_t i = 1; i < s; ++i) {
    prob *= 1.0 - static_cast<double>(i) / static_cast<double>(n);
  }
  return prob;
}

SingleCollisionTester::SingleCollisionTester(GapTesterParams params)
    : params_(params) {
  if (params_.s < 2) {
    throw std::invalid_argument("SingleCollisionTester: s must be >= 2");
  }
}

bool SingleCollisionTester::accept(
    std::span<const std::uint64_t> samples) const {
  if (samples.size() != params_.s) {
    throw std::invalid_argument(
        "SingleCollisionTester: wrong number of samples");
  }
  return !has_collision(samples, params_.n);
}

bool SingleCollisionTester::run(const AliasSampler& sampler,
                                stats::Xoshiro256& rng) const {
  // dut-lint: allow(no-mutable-static): per-thread sample scratch; cleared by
  // sample_into each trial, so verdicts never depend on reuse or thread count.
  static thread_local std::vector<std::uint64_t> samples;
  sampler.sample_into(rng, params_.s, samples);
  return !has_collision(samples, params_.n);
}

}  // namespace dut::core
