#include "dut/core/zero_round.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "dut/stats/bounds.hpp"

namespace dut::core {

namespace {

void validate_common(std::uint64_t n, std::uint64_t k, double epsilon,
                     double p) {
  if (n < 2) throw std::invalid_argument("planner: n must be >= 2");
  if (k == 0) throw std::invalid_argument("planner: k must be >= 1");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("planner: eps must be in (0, 2]");
  }
  if (!(p > 0.0) || p >= 0.5) {
    throw std::invalid_argument("planner: p must be in (0, 0.5)");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// AND rule
// ---------------------------------------------------------------------------

AndRulePlan plan_and_rule(std::uint64_t n, std::uint64_t k, double epsilon,
                          double p, std::uint64_t max_repetitions) {
  validate_common(n, k, epsilon, p);
  AndRulePlan plan;
  plan.n = n;
  plan.k = k;
  plan.epsilon = epsilon;
  plan.p = p;

  const double kd = static_cast<double>(k);
  // Largest per-node uniform-reject probability compatible with
  // (1 - q)^k >= 1 - p.
  const double complete_budget = 1.0 - std::pow(1.0 - p, 1.0 / kd);
  // Smallest per-node far-reject probability forcing (1 - q)^k <= p.
  const double sound_need = 1.0 - std::pow(p, 1.0 / kd);

  std::optional<AndRulePlan> best;
  for (std::uint64_t m = 1; m <= max_repetitions; ++m) {
    // All m runs must reject uniform for the node to reject, so the node's
    // uniform-reject probability is delta^m; solve delta <= budget^{1/m}.
    const double delta_max =
        std::pow(complete_budget, 1.0 / static_cast<double>(m));
    GapTesterParams params;
    try {
      params = solve_gap_tester(n, epsilon, delta_max, Rounding::kDown);
    } catch (const std::invalid_argument&) {
      continue;
    }
    // Rounding down keeps the effective delta within budget unless s was
    // clamped up to 2 samples; then this m is unusable.
    if (params.delta > delta_max) continue;
    if (!params.has_gap) continue;

    const double per_run_reject_far = params.alpha * params.delta;
    const double node_reject_far =
        std::pow(per_run_reject_far, static_cast<double>(m));
    if (node_reject_far < sound_need) continue;

    AndRulePlan candidate = plan;
    candidate.feasible = true;
    candidate.repetitions = m;
    candidate.base = params;
    candidate.samples_per_node = m * params.s;
    const double node_reject_uniform =
        std::pow(params.delta, static_cast<double>(m));
    candidate.guaranteed_completeness =
        std::pow(1.0 - node_reject_uniform, kd);
    candidate.guaranteed_soundness =
        1.0 - std::pow(1.0 - node_reject_far, kd);
    if (!best || candidate.samples_per_node < best->samples_per_node) {
      best = candidate;
    }
  }

  if (!best) {
    plan.feasible = false;
    plan.infeasible_reason =
        "no (m, delta) pair satisfies both error bounds; the network is too "
        "small relative to n (or eps too small) for the AND-rule regime";
    return plan;
  }
  return *best;
}

Verdict run_and_rule_network(const AndRulePlan& plan,
                             const AliasSampler& sampler,
                             stats::Xoshiro256& rng) {
  if (!plan.feasible) {
    throw std::logic_error("run_and_rule_network: plan is infeasible");
  }
  if (sampler.n() != plan.n) {
    throw std::invalid_argument("run_and_rule_network: domain mismatch");
  }
  const RepeatedGapTester node_tester(plan.base, plan.repetitions);
  std::uint64_t rejecting = 0;
  for (std::uint64_t node = 0; node < plan.k; ++node) {
    if (!node_tester.run(sampler, rng)) ++rejecting;
  }
  return Verdict::make(rejecting == 0, rejecting, plan.k);
}

// ---------------------------------------------------------------------------
// Threshold rule
// ---------------------------------------------------------------------------

ThresholdPlacement place_threshold(std::uint64_t ell,
                                   const GapTesterParams& params, double p,
                                   TailBound bound) {
  ThresholdPlacement result;
  if (ell == 0 || !params.has_gap) return result;
  const double kd = static_cast<double>(ell);
  const double eta_u = kd * params.delta;
  const double q_far = std::min(1.0, params.alpha * params.delta);
  const double eta_f = kd * q_far;
  if (eta_u <= 0.0 || eta_f <= eta_u) return result;
  result.eta_uniform = eta_u;
  result.eta_far = eta_f;

  if (bound == TailBound::kChernoff) {
    const double L = std::log(1.0 / p);
    // Paper eq. (5): eta_U + sqrt(3*L*eta_U) <= T <= eta_F - sqrt(2*L*eta_F).
    const double t_lo = eta_u + std::sqrt(3.0 * L * eta_u);
    const double t_hi = eta_f - std::sqrt(2.0 * L * eta_f);
    const double t_ceil = std::ceil(t_lo);
    if (t_ceil > t_hi || t_ceil > kd) return result;
    const auto T = static_cast<std::uint64_t>(t_ceil);
    if (T == 0) return result;
    result.feasible = true;
    result.threshold = T;
    result.bound_false_reject =
        stats::chernoff_upper_tail(eta_u, static_cast<double>(T));
    result.bound_false_accept =
        stats::chernoff_lower_tail(eta_f, static_cast<double>(T));
    return result;
  }

  // Exact binomial placement. Worst cases: completeness at q = delta
  // (Pr[reject | U] <= delta, and the upper tail is monotone in q);
  // soundness at q = alpha*delta (the guaranteed minimum).
  // Find the smallest T with Pr[Bin(ell, delta) >= T] <= p.
  std::uint64_t lo = 1;
  std::uint64_t hi = ell + 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (stats::binomial_tail_geq(ell, params.delta, mid) <= p) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::uint64_t T = lo;
  if (T > ell) return result;
  const double false_reject = stats::binomial_tail_geq(ell, params.delta, T);
  const double false_accept = stats::binomial_tail_leq(ell, q_far, T - 1);
  if (false_reject > p || false_accept > p) return result;
  result.feasible = true;
  result.threshold = T;
  result.bound_false_reject = false_reject;
  result.bound_false_accept = false_accept;
  return result;
}

namespace {

struct ThresholdAttempt {
  GapTesterParams params;
  std::uint64_t threshold;
  double eta_uniform;
  double eta_far;
  double bound_false_reject;
  double bound_false_accept;
};

/// Tries to realize the threshold tester with reject budget A = k*delta.
std::optional<ThresholdAttempt> attempt_threshold(std::uint64_t n,
                                                  std::uint64_t k, double eps,
                                                  double p, TailBound bound,
                                                  double A) {
  const double delta = A / static_cast<double>(k);
  if (!(delta > 0.0) || delta >= 1.0) return std::nullopt;

  GapTesterParams params;
  try {
    params = solve_gap_tester(n, eps, delta, Rounding::kNearest);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  const ThresholdPlacement placement = place_threshold(k, params, p, bound);
  if (!placement.feasible) return std::nullopt;
  return ThresholdAttempt{params,
                          placement.threshold,
                          placement.eta_uniform,
                          placement.eta_far,
                          placement.bound_false_reject,
                          placement.bound_false_accept};
}

}  // namespace

ThresholdPlan plan_threshold(std::uint64_t n, std::uint64_t k, double epsilon,
                             double p, TailBound bound, double gamma_min) {
  validate_common(n, k, epsilon, p);
  if (!(gamma_min > 0.0) || gamma_min > 1.0) {
    throw std::invalid_argument("plan_threshold: gamma_min must be in (0,1]");
  }
  ThresholdPlan plan;
  plan.n = n;
  plan.k = k;
  plan.epsilon = epsilon;
  plan.p = p;
  plan.bound = bound;

  // Closed-form seed for the reject budget A = k*delta (DESIGN.md §6):
  // the Chernoff interval is nonempty when g*A >= (a+b)*sqrt(A) with
  // g = gamma_min*eps^2, a = sqrt(3L), b = sqrt(2L(1+g)).
  const double L = std::log(1.0 / p);
  const double g = gamma_min * epsilon * epsilon;
  const double a = std::sqrt(3.0 * L);
  const double b = std::sqrt(2.0 * L * (1.0 + g));
  const double seed = ((a + b) / g) * ((a + b) / g);

  // Feasibility is not monotone in A (large A inflates delta and erodes the
  // gap), so scan a geometric grid around the seed and keep the smallest
  // feasible budget.
  std::optional<ThresholdAttempt> best;
  double best_A = 0.0;
  for (double A = seed / 32.0; A <= seed * 32.0; A *= 1.05) {
    if (A > static_cast<double>(k)) break;
    const auto attempt = attempt_threshold(n, k, epsilon, p, bound, A);
    if (attempt) {
      best = attempt;
      best_A = A;
      break;  // grid is increasing: first hit is the smallest feasible A
    }
  }
  (void)best_A;

  if (!best) {
    plan.feasible = false;
    plan.infeasible_reason =
        "no reject budget A = k*delta admits a threshold T with both error "
        "bounds <= p; increase k or n, or relax p";
    return plan;
  }

  plan.feasible = true;
  plan.base = best->params;
  plan.threshold = best->threshold;
  plan.eta_uniform = best->eta_uniform;
  plan.eta_far = best->eta_far;
  plan.bound_false_reject = best->bound_false_reject;
  plan.bound_false_accept = best->bound_false_accept;
  return plan;
}

Verdict run_threshold_network(const ThresholdPlan& plan,
                              const AliasSampler& sampler,
                              stats::Xoshiro256& rng) {
  if (!plan.feasible) {
    throw std::logic_error("run_threshold_network: plan is infeasible");
  }
  if (sampler.n() != plan.n) {
    throw std::invalid_argument("run_threshold_network: domain mismatch");
  }
  const SingleCollisionTester node_tester(plan.base);
  std::uint64_t rejecting = 0;
  for (std::uint64_t node = 0; node < plan.k; ++node) {
    if (!node_tester.run(sampler, rng)) ++rejecting;
  }
  return Verdict::make(rejecting < plan.threshold, rejecting, plan.k);
}

}  // namespace dut::core
