#include "dut/core/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "dut/core/gap_tester.hpp"

namespace dut::core {

CollisionCountingTester::CollisionCountingTester(std::uint64_t n,
                                                 double epsilon,
                                                 std::uint64_t s)
    : n_(n), s_(s) {
  if (n < 2) throw std::invalid_argument("CollisionCounting: n must be >= 2");
  if (s < 2) throw std::invalid_argument("CollisionCounting: s must be >= 2");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("CollisionCounting: eps must be in (0, 2]");
  }
  // Midpoint between chi(U) = 1/n and Lemma 3.2's eps-far floor.
  threshold_ = (1.0 + epsilon * epsilon / 2.0) / static_cast<double>(n);
}

std::uint64_t CollisionCountingTester::recommended_samples(std::uint64_t n,
                                                           double epsilon,
                                                           double c) {
  if (!(epsilon > 0.0)) {
    throw std::invalid_argument("recommended_samples: eps must be > 0");
  }
  const double s =
      c * std::sqrt(static_cast<double>(n)) / (epsilon * epsilon);
  return std::max<std::uint64_t>(2, static_cast<std::uint64_t>(std::ceil(s)));
}

bool CollisionCountingTester::run(const AliasSampler& sampler,
                                  stats::Xoshiro256& rng) const {
  // dut-lint: allow(no-mutable-static): per-thread sample scratch; cleared by
  // sample_into each trial, so verdicts never depend on reuse or thread count.
  static thread_local std::vector<std::uint64_t> samples;
  sampler.sample_into(rng, s_, samples);
  const std::uint64_t pairs = count_colliding_pairs(samples, n_);
  const double total_pairs =
      static_cast<double>(s_) * static_cast<double>(s_ - 1) / 2.0;
  return static_cast<double>(pairs) / total_pairs <= threshold_;
}

UniqueElementsTester::UniqueElementsTester(std::uint64_t n, double epsilon,
                                           std::uint64_t s)
    : n_(n), s_(s) {
  if (n < 2) throw std::invalid_argument("UniqueElements: n must be >= 2");
  if (s < 2) throw std::invalid_argument("UniqueElements: s must be >= 2");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("UniqueElements: eps must be in (0, 2]");
  }
  redundancy_threshold_ = (1.0 + epsilon * epsilon / 2.0) *
                          static_cast<double>(s) *
                          static_cast<double>(s - 1) /
                          (2.0 * static_cast<double>(n));
}

bool UniqueElementsTester::accept(
    std::span<const std::uint64_t> samples) const {
  if (samples.size() != s_) {
    throw std::invalid_argument("UniqueElements: wrong sample count");
  }
  std::vector<std::uint64_t> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t distinct = 0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    ++distinct;
    i = j;
  }
  const double redundancy = static_cast<double>(s_ - distinct);
  return redundancy <= redundancy_threshold_;
}

bool UniqueElementsTester::run(const AliasSampler& sampler,
                               stats::Xoshiro256& rng) const {
  // dut-lint: allow(no-mutable-static): per-thread sample scratch; cleared by
  // sample_into each trial, so verdicts never depend on reuse or thread count.
  static thread_local std::vector<std::uint64_t> samples;
  sampler.sample_into(rng, s_, samples);
  return accept(samples);
}

EmpiricalL1Tester::EmpiricalL1Tester(std::uint64_t n, double epsilon,
                                     std::uint64_t s)
    : n_(n), epsilon_(epsilon), s_(s) {
  if (n < 1) throw std::invalid_argument("EmpiricalL1: n must be >= 1");
  if (s < 1) throw std::invalid_argument("EmpiricalL1: s must be >= 1");
  if (!(epsilon > 0.0) || epsilon > 2.0) {
    throw std::invalid_argument("EmpiricalL1: eps must be in (0, 2]");
  }
}

bool EmpiricalL1Tester::run(const AliasSampler& sampler,
                            stats::Xoshiro256& rng) const {
  std::vector<std::uint64_t> counts(n_, 0);
  for (std::uint64_t i = 0; i < s_; ++i) ++counts[sampler.sample(rng)];
  const double u = 1.0 / static_cast<double>(n_);
  double distance = 0.0;
  for (const std::uint64_t c : counts) {
    distance +=
        std::abs(static_cast<double>(c) / static_cast<double>(s_) - u);
  }
  return distance <= epsilon_ / 2.0;
}

}  // namespace dut::core
