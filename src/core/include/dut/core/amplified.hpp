#pragma once

// Gap amplification by repetition (paper Section 3.2.1).
//
// Running A_delta m times independently and rejecting iff *all* m runs
// reject turns a (delta, alpha)-gap tester into a (delta^m, alpha^m)-gap
// tester: the reject probability on uniform drops to <= delta^m while the
// reject probability on eps-far inputs stays >= (alpha*delta)^m, widening
// the multiplicative gap to alpha^m at the price of m*s samples.

#include <cstdint>

#include "dut/core/gap_tester.hpp"

namespace dut::core {

class RepeatedGapTester {
 public:
  /// `repetitions` must be >= 1.
  RepeatedGapTester(GapTesterParams base, std::uint64_t repetitions);

  const GapTesterParams& base_params() const noexcept {
    return base_.params();
  }
  std::uint64_t repetitions() const noexcept { return repetitions_; }

  /// Total samples consumed per decision: m * s.
  std::uint64_t total_samples() const noexcept {
    return repetitions_ * base_.params().s;
  }

  /// Guaranteed reject probability on uniform: delta^m.
  double delta() const noexcept;

  /// Guaranteed gap: alpha^m (only meaningful when base has_gap).
  double alpha() const noexcept;

  /// Draws m*s fresh samples and decides: accepts unless *all* m runs saw a
  /// collision.
  bool run(const AliasSampler& sampler, stats::Xoshiro256& rng) const;

  /// Decides from pre-drawn samples (used when samples were gathered over
  /// the network): the first m*s entries are split into m runs of s.
  /// `samples.size()` must be at least total_samples().
  bool decide(std::span<const std::uint64_t> samples) const;

 private:
  SingleCollisionTester base_;
  std::uint64_t repetitions_;
};

}  // namespace dut::core
