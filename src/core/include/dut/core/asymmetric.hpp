#pragma once

// The asymmetric-cost generalization (paper Section 4).
//
// Node i pays c_i per sample; the objective is the maximum individual cost
// C = max_i s_i * c_i. Writing T_i = 1/c_i, the paper shows:
//
//   * threshold rule: C = Theta(sqrt(n)/eps^2) / ||T||_2      (Section 4.2),
//   * AND rule:       C = Theta_m(sqrt(n))     / ||T||_{2m},
//     with m = Theta(1/eps^2) repetitions                     (Section 4.1),
//
// recovering the symmetric bounds at unit costs (||T||_2 = sqrt(k)).
// Responsibility splitting: node i is assigned delta_i proportional to
// T_i^2 (threshold) or T_i^{2m} (AND), so cheap nodes shoulder more of the
// rejection budget. Soundness under unequal delta_i is exactly Lemma 4.1,
// which we both expose for numeric verification and sidestep by evaluating
// the realized products directly.

#include <cstdint>
#include <string>
#include <vector>

#include "dut/core/gap_tester.hpp"
#include "dut/core/sampler.hpp"
#include "dut/core/verdict.hpp"
#include "dut/core/zero_round.hpp"
#include "dut/stats/rng.hpp"

namespace dut::core {

/// L_order norm of the inverse-cost vector T (T_i = 1/c_i). Costs must be
/// strictly positive.
double inverse_cost_norm(std::span<const double> costs, double order);

// ---------------------------------------------------------------------------
// Lemma 4.1 (numeric form)
// ---------------------------------------------------------------------------

/// Evaluates the two sides of Lemma 4.1 for a concrete point: given
/// X = (x_1..x_k) with all x_i in [0, 1) and a > 1, returns
/// { g(X) = prod (1 - a*x_i),  g(Y) = (1 - a*d)^k } where d is chosen so
/// that prod (1 - d) = prod (1 - x_i) (i.e. Y is the symmetric point on the
/// same constraint manifold). The lemma asserts g(X) <= g(Y).
struct Lemma41Sides {
  double g_at_x;
  double g_at_symmetric;
};
Lemma41Sides lemma41_sides(std::span<const double> x, double a);

// ---------------------------------------------------------------------------
// Threshold rule with costs (Section 4.2)
// ---------------------------------------------------------------------------

struct AsymmetricThresholdPlan {
  // Inputs.
  std::uint64_t n = 0;
  double epsilon = 0.0;
  double p = 0.0;
  std::vector<double> costs;

  // Outputs.
  bool feasible = false;
  std::string infeasible_reason;
  std::vector<GapTesterParams> node_params;  ///< per-node A_delta instance
  std::uint64_t threshold = 0;
  double budget = 0.0;        ///< realized sum of delta_i
  double max_cost = 0.0;      ///< realized max_i s_i * c_i
  double predicted_max_cost = 0.0;  ///< sqrt(2 n A) / ||T||_2
  double eta_uniform = 0.0;
  double eta_far = 0.0;
  double bound_false_reject = 1.0;
  double bound_false_accept = 1.0;
};

/// Plans the asymmetric threshold tester: delta_i proportional to T_i^2
/// scaled to a total budget A (searched as in the symmetric planner), then
/// T placed by Chernoff bounds on the Poisson-binomial reject count.
AsymmetricThresholdPlan plan_asymmetric_threshold(std::uint64_t n,
                                                  std::vector<double> costs,
                                                  double epsilon,
                                                  double p = 1.0 / 3.0);

/// One full network trial; node i draws s_i samples and runs its own
/// A_{delta_i}. Voters = nodes; the network rejects iff votes_reject >=
/// plan.threshold.
[[nodiscard]] Verdict run_asymmetric_threshold_network(const AsymmetricThresholdPlan& plan,
                                         const AliasSampler& sampler,
                                         stats::Xoshiro256& rng);

// ---------------------------------------------------------------------------
// AND rule with costs (Section 4.1)
// ---------------------------------------------------------------------------

struct AsymmetricAndPlan {
  // Inputs.
  std::uint64_t n = 0;
  double epsilon = 0.0;
  double p = 0.0;
  std::vector<double> costs;

  // Outputs.
  bool feasible = false;
  std::string infeasible_reason;
  std::uint64_t repetitions = 0;             ///< m, shared by all nodes
  std::vector<GapTesterParams> node_params;  ///< per-run params of node i
  std::vector<std::uint64_t> samples_per_node;  ///< m * s_i
  double max_cost = 0.0;             ///< realized max_i m * s_i * c_i
  double guaranteed_completeness = 0.0;
  double guaranteed_soundness = 0.0;
};

/// Plans the asymmetric AND-rule tester: for each candidate m, node i gets
/// delta_i proportional to T_i^{2m} scaled so the network completeness
/// product equals 1 - p, then the realized soundness product is evaluated
/// directly; the feasible m with the smallest max individual cost wins.
AsymmetricAndPlan plan_asymmetric_and(std::uint64_t n,
                                      std::vector<double> costs,
                                      double epsilon, double p,
                                      std::uint64_t max_repetitions = 64);

/// One full network trial under the AND rule. Voters = nodes; the network
/// accepts iff votes_reject == 0 (every node evaluated, no early exit).
[[nodiscard]] Verdict run_asymmetric_and_network(const AsymmetricAndPlan& plan,
                                   const AliasSampler& sampler,
                                   stats::Xoshiro256& rng);

}  // namespace dut::core
