#pragma once

// Centralized baselines the paper compares against.
//
// * CollisionCountingTester — the classical Theta(sqrt(n)/eps^2) uniformity
//   tester (Goldreich–Ron / Paninski line of work): draw s samples, compute
//   the empirical collision statistic (#colliding pairs) / binom(s, 2), and
//   accept iff it is below the midpoint between chi(U) = 1/n and the eps-far
//   floor (1 + eps^2)/n. This is the "single strong node" yardstick: one
//   node with Theta(sqrt(n)/eps^2) samples decides alone.
//
// * EmpiricalL1Tester — the naive plug-in tester (estimate the pmf, measure
//   its L1 distance). Needs Theta(n/eps^2) samples; included to show why
//   collision statistics matter (bench/e5 baseline columns).

#include <cstdint>
#include <span>

#include "dut/core/sampler.hpp"
#include "dut/stats/rng.hpp"

namespace dut::core {

class CollisionCountingTester {
 public:
  /// `s` samples against domain size n, distance eps.
  CollisionCountingTester(std::uint64_t n, double epsilon, std::uint64_t s);

  std::uint64_t samples() const noexcept { return s_; }

  /// Acceptance threshold on the normalized collision statistic.
  double statistic_threshold() const noexcept { return threshold_; }

  /// Rule-of-thumb sample count for constant error: c * sqrt(n) / eps^2.
  /// The default c = 3 gives error well under 1/3 on the Paninski family
  /// (calibrated by bench/e5_threshold's baseline column).
  static std::uint64_t recommended_samples(std::uint64_t n, double epsilon,
                                           double c = 3.0);

  /// Accepts iff the empirical collision rate is <= the threshold.
  bool run(const AliasSampler& sampler, stats::Xoshiro256& rng) const;

 private:
  std::uint64_t n_;
  std::uint64_t s_;
  double threshold_;
};

/// Paninski's coincidence-based tester in its original form: the statistic
/// is the number of DISTINCT values among the s samples (equivalently the
/// "redundancy" s - distinct), thresholded at the midpoint calibration
/// (1 + eps^2/2) * binom(s, 2) / n. In the sparse regime s << sqrt(n) the
/// redundancy and the colliding-pair count coincide up to negligible
/// higher-order terms, so this tester and CollisionCountingTester agree on
/// almost every input (verified by tests); both need Theta(sqrt(n)/eps^2)
/// samples.
class UniqueElementsTester {
 public:
  UniqueElementsTester(std::uint64_t n, double epsilon, std::uint64_t s);

  std::uint64_t samples() const noexcept { return s_; }

  /// Accepts iff the redundancy s - distinct is at most the threshold.
  bool run(const AliasSampler& sampler, stats::Xoshiro256& rng) const;
  bool accept(std::span<const std::uint64_t> samples) const;

 private:
  std::uint64_t n_;
  std::uint64_t s_;
  double redundancy_threshold_;
};

class EmpiricalL1Tester {
 public:
  EmpiricalL1Tester(std::uint64_t n, double epsilon, std::uint64_t s);

  std::uint64_t samples() const noexcept { return s_; }

  /// Accepts iff the plug-in estimate ||mu_hat - U_n||_1 <= eps/2.
  bool run(const AliasSampler& sampler, stats::Xoshiro256& rng) const;

 private:
  std::uint64_t n_;
  double epsilon_;
  std::uint64_t s_;
};

}  // namespace dut::core
