#pragma once

// Distribution families used as workloads throughout the tests, benches and
// examples. Each factory documents its exact L1 distance to uniform so
// experiments can pick instances at a prescribed eps.

#include <cstdint>
#include <string>

#include "dut/core/distribution.hpp"

namespace dut::core {

/// The uniform distribution U_n.
Distribution uniform(std::uint64_t n);

/// Paninski's canonical hard instance for uniformity testing: elements are
/// paired, element 2i gets mass (1+eps)/n and element 2i+1 gets (1-eps)/n.
/// Requires even n and eps in [0, 1]. Exactly eps-far from uniform in L1.
/// This family attains the chi(mu) lower bound of Lemma 3.2 with equality:
/// chi = (1+eps^2)/n, making it the worst case for collision-based testers.
Distribution paninski_two_bump(std::uint64_t n, double eps);

/// As above, but the +/- assignment within each pair is chosen by `seed`
/// (still exactly eps-far; used to rule out positional artifacts).
Distribution paninski_two_bump_shuffled(std::uint64_t n, double eps,
                                        std::uint64_t seed);

/// One heavy element of mass `heavy_mass`, remaining mass spread uniformly.
/// L1 distance to uniform = 2 * (heavy_mass - 1/n) for heavy_mass >= 1/n.
/// Models the paper's DoS motivation (one destination dominating traffic).
Distribution heavy_hitter(std::uint64_t n, double heavy_mass);

/// Uniform over the first `support` elements of an n-element domain,
/// zero elsewhere. L1 distance to uniform = 2 * (1 - support/n).
Distribution restricted_support(std::uint64_t n, std::uint64_t support);

/// Zipf with exponent `s` over n elements: p_i proportional to 1/(i+1)^s.
Distribution zipf(std::uint64_t n, double s);

/// Two-level "step" distribution: the first `ceil(fraction*n)` elements each
/// carry `ratio` times the mass of the rest. ratio=1 gives uniform.
Distribution step(std::uint64_t n, double fraction, double ratio);

/// Convex mixture w*a + (1-w)*b (domains must agree; w in [0,1]).
Distribution mixture(const Distribution& a, const Distribution& b, double w);

/// A canonical instance at L1 distance >= eps from uniform for the whole
/// meaningful range eps in (0, 2): the Paninski two-bump family for
/// eps <= 1 (which minimizes the collision probability, i.e. is worst-case
/// for collision testers), and a restricted-support uniform for eps > 1
/// (two-bump cannot exceed distance 1). Requires even n > 2.
Distribution far_instance(std::uint64_t n, double eps);

/// Mixture of uniform and an arbitrary distribution chosen so that the
/// result has L1 distance exactly `target_eps` from uniform; throws if `mu`
/// is closer to uniform than `target_eps`. Handy for sweeping eps along a
/// fixed "direction".
Distribution at_distance(const Distribution& mu, double target_eps);

/// Re-dispatches a Distribution::spec() string ("uniform:N", "two_bump:N,E",
/// "two_bump_shuffled:N,E,S", "heavy:N,M", "support:N,S", "zipf:N,S",
/// "step:N,F,R", "far:N,E") to the factory that produced it; throws
/// std::invalid_argument on an unknown recipe. mixture() and at_distance()
/// results are not stamped — derived pmfs have no single-factory recipe.
Distribution distribution_from_spec(const std::string& spec);

}  // namespace dut::core
