#pragma once

// The paper's single-collision gap tester A_delta (Section 3.1) and its
// parameter algebra.
//
// A_delta draws s samples with s(s-1) ~= 2*delta*n and accepts iff all
// samples are distinct. Theorem 3.1 / Lemma 3.4: this is a
// (delta, 1 + gamma*eps^2)-gap tester, where gamma is the slack term of
// paper eq. (1):
//
//   gamma = 1 - 1/s - sqrt(2*delta*(1+eps^2))
//             - (1/s + sqrt(2*delta*(1+eps^2))) / eps^2.
//
// Completeness is exact Markov: Pr[collision under U_n] <= binom(s,2)/n,
// so we expose the *effective* delta = s(s-1)/(2n) realized by the integer
// s actually used, and every downstream planner consumes that value.

#include <cstdint>
#include <span>
#include <vector>

#include "dut/core/sampler.hpp"
#include "dut/stats/rng.hpp"

namespace dut::core {

/// True iff `samples` contains two equal values. Sorts a scratch copy:
/// deterministic, O(s log s), no hashing.
bool has_collision(std::span<const std::uint64_t> samples);

/// Number of colliding *pairs*: sum over values x of binom(m_x, 2) where
/// m_x is the multiplicity of x. Used by the collision-counting baseline.
std::uint64_t count_colliding_pairs(std::span<const std::uint64_t> samples);

/// Reusable scratch for the O(s) mark-table collision kernels. The tables
/// are allocated once per (thread, domain) and then reused across trials:
/// marking and unmarking touch only the s sampled entries, never the whole
/// domain, so a trial costs O(s) after the first. Not thread-safe — use
/// thread_collision_workspace() for one instance per thread.
class CollisionWorkspace {
 public:
  /// Largest domain for which has_collision uses the bitmap (n bits,
  /// 2 MiB at the cap) instead of sorting.
  static constexpr std::uint64_t kMaxBitmapDomain = 1ULL << 24;
  /// Largest domain for which count_colliding_pairs keeps a multiplicity
  /// table (4 bytes per element, 16 MiB at the cap).
  static constexpr std::uint64_t kMaxCountDomain = 1ULL << 22;

  /// `n`-aware has_collision: O(s) bitmap scan when the domain fits (with
  /// early exit on the first collision), sort fallback otherwise. Values
  /// >= n are legal and force the fallback.
  bool has_collision(std::span<const std::uint64_t> samples, std::uint64_t n);

  /// `n`-aware count_colliding_pairs via an O(s) multiplicity table.
  std::uint64_t count_colliding_pairs(std::span<const std::uint64_t> samples,
                                      std::uint64_t n);

 private:
  bool bitmap_has_collision(std::span<const std::uint64_t> samples,
                            std::uint64_t n);

  std::vector<std::uint64_t> bits_;    // 1 bit per domain element, lazily sized
  std::vector<std::uint32_t> counts_;  // multiplicities, lazily sized
  std::vector<std::uint64_t> scratch_;  // sort fallback buffer
};

/// The calling thread's workspace (engine trials run one trial at a time per
/// thread, so one workspace per thread is exactly enough).
CollisionWorkspace& thread_collision_workspace();

/// Convenience dispatchers through the calling thread's workspace.
bool has_collision(std::span<const std::uint64_t> samples, std::uint64_t n);
std::uint64_t count_colliding_pairs(std::span<const std::uint64_t> samples,
                                    std::uint64_t n);

/// How to round the real solution of s(s-1) = 2*delta*n to an integer s.
/// kUp guarantees soundness-side sample mass at the price of a slightly
/// larger effective delta; kDown the reverse. E1 ablates this choice.
enum class Rounding { kDown, kNearest, kUp };

/// Resolved parameters of a single run of A_delta.
struct GapTesterParams {
  std::uint64_t n = 0;        ///< domain size
  double epsilon = 0.0;       ///< distance parameter
  double delta_requested = 0.0;
  std::uint64_t s = 0;        ///< integer sample count actually used
  double delta = 0.0;         ///< effective delta = s(s-1)/(2n)
  double gamma = 0.0;         ///< slack term of eq. (1) at the effective delta
  double alpha = 0.0;         ///< guaranteed gap = 1 + gamma*eps^2
  /// True iff the strict validity domain the paper uses for the distributed
  /// setting holds: delta < eps^4/64 and n > 64/(eps^4*delta), which implies
  /// gamma >= 1/2 (checked by tests across the whole grid).
  bool in_paper_domain = false;
  /// True iff gamma > 0, i.e. the tester has *some* guaranteed gap.
  bool has_gap = false;
};

/// Solves for the integer sample count given a requested delta and
/// recomputes all derived quantities at the effective delta.
/// Requires n >= 2, eps in (0, 1], delta in (0, 1).
GapTesterParams solve_gap_tester(std::uint64_t n, double epsilon, double delta,
                                 Rounding rounding = Rounding::kNearest);

/// Computes eq. (1)'s gamma for explicit (s, delta, eps).
double gap_slack_gamma(std::uint64_t s, double delta, double epsilon);

/// Builds resolved parameters from an explicit integer sample count
/// (used by the asymmetric planners, where s_i derives from a cost share).
/// Requires s >= 2.
GapTesterParams params_from_samples(std::uint64_t n, double epsilon,
                                    std::uint64_t s);

/// Upper bound of Lemma 3.3 (Wiener's birthday bound) on the probability of
/// seeing *no* collision among s samples from a distribution with collision
/// probability chi:  exp(-(s-1)*sqrt(chi)) * (1 + (s-1)*sqrt(chi)).
double wiener_no_collision_bound(std::uint64_t s, double chi);

/// Exact no-collision probability under the *uniform* distribution,
/// prod_{i<s} (1 - i/n); reference value for E3.
double uniform_no_collision_exact(std::uint64_t s, std::uint64_t n);

/// The single-collision tester A_delta. Stateless apart from its parameters
/// (per-trial scratch lives in the calling thread's CollisionWorkspace, so
/// one tester may run concurrently from many engine threads); `accept` is a
/// pure function of the samples.
class SingleCollisionTester {
 public:
  explicit SingleCollisionTester(GapTesterParams params);

  const GapTesterParams& params() const noexcept { return params_; }

  /// Accepts ("uniform") iff all samples are distinct.
  /// `samples.size()` must equal params().s.
  bool accept(std::span<const std::uint64_t> samples) const;

  /// Draws s fresh samples from `sampler` and decides.
  bool run(const AliasSampler& sampler, stats::Xoshiro256& rng) const;

 private:
  GapTesterParams params_;
};

}  // namespace dut::core
