#pragma once

// Sample-based estimators of the distribution properties the testers key
// on. The testers answer accept/reject; a monitoring deployment usually
// also wants "how non-uniform does the stream look?" — these estimators
// provide that, and bench/e13_operating_curve charts how the tester's
// operating characteristics line up with them.

#include <cstdint>
#include <span>

namespace dut::core {

/// Estimate of the collision probability chi(mu) = sum_x mu(x)^2.
struct ChiEstimate {
  double chi_hat = 0.0;     ///< unbiased U-statistic: pairs / binom(s, 2)
  double lambda_hat = 0.0;  ///< triple-collision rate, estimates sum mu^3
  double std_error = 0.0;   ///< plug-in U-statistic standard error
  std::uint64_t samples = 0;
};

/// Unbiased collision estimator from an i.i.d. sample vector (s >= 2).
/// The exact U-statistic variance is
///   Var = [chi(1-chi) + 2(s-2)(lambda - chi^2)] / binom(s, 2),
/// with lambda = sum_x mu(x)^3 (overlapping pairs are correlated through
/// triple collisions); std_error plugs in the empirical chi_hat and
/// lambda_hat. Tests validate both unbiasedness and the error bar against
/// the empirical scatter on skewed families.
ChiEstimate estimate_chi(std::span<const std::uint64_t> samples);

/// The collision "distance score": inverts Lemma 3.2's relation on the
/// worst-case (Paninski) family, eps_hat = sqrt(max(0, chi_hat * n - 1)).
/// Exact in expectation for two-bump instances; an upper-skewed proxy for
/// other shapes (a heavy hitter scores far above its L1 distance, which is
/// precisely why collision testers detect it early — see bench/e13).
double collision_distance_score(double chi_hat, std::uint64_t n);

/// Plug-in L1 distance to uniform: || mu_hat - U_n ||_1 for the empirical
/// mu_hat. Consistent only with s = Omega(n) samples; with fewer it is
/// dominated by a positive bias approaching 2 (the naive-baseline failure
/// mode the paper's collision machinery avoids).
double plugin_l1_to_uniform(std::span<const std::uint64_t> samples,
                            std::uint64_t n);

/// Support statistics with a Good-Turing unseen-mass estimate.
struct SupportEstimate {
  std::uint64_t distinct = 0;   ///< distinct values observed
  std::uint64_t singletons = 0; ///< values observed exactly once
  /// Good-Turing estimate of the probability mass on unseen elements:
  /// singletons / samples.
  double unseen_mass = 0.0;
};
SupportEstimate estimate_support(std::span<const std::uint64_t> samples);

}  // namespace dut::core
