#pragma once

// Reduction from identity testing to uniformity testing (Goldreich 2016;
// used by the paper's introduction to argue uniformity is the canonical
// distributed testing problem).
//
// Given a *known* distribution q on [n] and samples from an unknown mu, the
// filter maps each sample, using only private randomness, to a "grain" in a
// larger domain [m] such that
//
//   * if mu = q, the output is exactly uniform on [m];
//   * if ||mu - q||_1 >= eps, the output is at least output_epsilon()-far
//     from uniform on [m], with output_epsilon() >= (1 - 2n/m) * eps / 2.
//
// Construction (documented in DESIGN.md; proofs inline below):
//  1. Mixing: with probability 1/2 the sample is replaced by a uniform
//     element, moving the pair (mu, q) to (mu~, q~) = ((mu+U)/2, (q+U)/2);
//     every q~_i >= 1/(2n) and distances halve.
//  2. Granulation: bucket i receives n_i = floor(q~_i * m) grains of [m];
//     the r = m - sum n_i leftover grains form an overflow region.
//  3. Routing: a sample i goes to a uniform grain of bucket i with
//     probability n_i / (m * q~_i), else to a uniform overflow grain.
//
// Under mu = q each grain gets mass exactly 1/m (checked exactly by
// `pushforward` in tests). The distributed relevance: each node applies the
// filter to its own samples independently — no coordination needed — and the
// network then runs any distributed *uniformity* tester on domain [m] with
// distance parameter output_epsilon().

#include <cstdint>

#include "dut/core/distribution.hpp"
#include "dut/stats/rng.hpp"

namespace dut::core {

class IdentityFilter {
 public:
  /// `q` is the reference distribution; `eps` the identity-testing distance.
  /// `grains_per_eps` scales the output domain m = ceil(grains_per_eps*n/eps)
  /// (default 8: output_epsilon() >= 3*eps/8).
  IdentityFilter(Distribution q, double eps, double grains_per_eps = 8.0);

  std::uint64_t input_domain() const noexcept { return q_.n(); }

  /// Output domain size m.
  std::uint64_t output_domain() const noexcept { return m_; }

  /// Guaranteed distance of the filtered distribution from U_m whenever the
  /// input is eps-far from q: (1 - 2n/m) * eps / 2.
  double output_epsilon() const noexcept { return output_epsilon_; }

  /// Maps one raw sample (an element of [n]) to a grain of [m].
  std::uint64_t apply(std::uint64_t sample, stats::Xoshiro256& rng) const;

  /// Exact distribution of apply(X) when X ~ mu; used to verify the filter's
  /// guarantees without sampling noise.
  Distribution pushforward(const Distribution& mu) const;

 private:
  Distribution q_;
  double eps_;
  std::uint64_t m_ = 0;
  double output_epsilon_ = 0.0;
  std::vector<std::uint64_t> bucket_size_;    ///< n_i
  std::vector<std::uint64_t> bucket_offset_;  ///< prefix sums of n_i
  std::vector<double> bucket_probability_;    ///< n_i / (m * q~_i)
  std::uint64_t overflow_offset_ = 0;
  std::uint64_t overflow_size_ = 0;  ///< r
};

}  // namespace dut::core
