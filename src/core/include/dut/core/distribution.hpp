#pragma once

// Discrete probability distributions on the domain {0, 1, ..., n-1}.
//
// The paper's domain is {1..n}; we use 0-based indices. A Distribution is an
// immutable, validated pmf together with the exact functionals the paper's
// analysis runs on: L1 distance (the testing metric), collision probability
// chi(mu) = sum_x mu(x)^2 (Lemma 3.2's quantity), entropies and divergences.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dut::core {

class Distribution {
 public:
  /// Validates that `pmf` is a probability vector: nonempty, entries in
  /// [0, 1], total within 1e-9 of 1. Throws std::invalid_argument otherwise.
  explicit Distribution(std::vector<double> pmf);

  /// Builds a distribution from nonnegative weights by normalizing.
  static Distribution from_weights(std::vector<double> weights);

  /// Domain size n.
  std::uint64_t n() const noexcept { return pmf_.size(); }

  double operator[](std::uint64_t i) const noexcept { return pmf_[i]; }
  std::span<const double> pmf() const noexcept { return pmf_; }

  /// L1 distance to another distribution on the same domain.
  double l1_distance(const Distribution& other) const;

  /// L1 distance to the uniform distribution on the same domain:
  /// sum_x |mu(x) - 1/n|. This is the paper's distance parameter epsilon.
  double l1_to_uniform() const noexcept;

  /// Total variation distance = L1 / 2.
  double tv_to_uniform() const noexcept { return l1_to_uniform() / 2.0; }

  /// Collision probability chi(mu) = Pr_{X,Y~mu}[X = Y] = sum mu(x)^2.
  /// chi(U_n) = 1/n; Lemma 3.2: mu eps-far  =>  chi(mu) > (1+eps^2)/n.
  double collision_probability() const noexcept;

  /// KL divergence D(mu || other) in nats.
  double kl_to(const Distribution& other) const;

  /// Shannon entropy in nats.
  double entropy() const noexcept;

  /// Number of elements with nonzero mass.
  std::uint64_t support_size() const noexcept;

  double min_probability() const noexcept;
  double max_probability() const noexcept;

  /// Canonical construction recipe ("uniform:4096", "far:4096,0.25", ...),
  /// stamped by the factories in families.hpp; empty for hand-built pmfs.
  /// distribution_from_spec(spec()) rebuilds the identical pmf — the replay
  /// tooling's workload channel.
  const std::string& spec() const noexcept { return spec_; }
  void set_spec(std::string spec) { spec_ = std::move(spec); }

 private:
  std::vector<double> pmf_;
  std::string spec_;
};

/// Verifies Lemma 3.2 numerically for a concrete distribution: returns the
/// ratio chi(mu) / ((1 + eps^2)/n) where eps = l1_to_uniform(). The lemma
/// asserts the ratio is > 1 whenever eps > 0 (strictly, for mu eps-far).
double lemma32_ratio(const Distribution& mu);

}  // namespace dut::core
