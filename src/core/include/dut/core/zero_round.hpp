#pragma once

// 0-round distributed uniformity testing (paper Sections 1 and 3.2).
//
// Two network decision rules are modeled:
//
//  * AND rule (Theorem 1.1): the network accepts iff every node accepts.
//    Each node runs m repetitions of A_delta and rejects iff all m runs saw
//    a collision. The planner below searches (m, delta) numerically to
//    satisfy, with guaranteed bounds,
//        completeness: Pr[all k nodes accept | U]      >= 1 - p,
//        soundness:    Pr[some node rejects | eps-far] >= 1 - p,
//    minimizing the per-node sample count m*s. The paper's Theorem 1.1
//    states the asymptotic s = Theta((C_p/eps^2) * sqrt(n / k^{Theta(eps^2/
//    C_p)})); the constants live in an unpublished full version, so we derive
//    concrete ones here (documented in DESIGN.md §5.3) and verify the
//    resulting guarantees empirically (bench/e4_and_rule).
//
//  * Threshold rule (Theorem 1.2): the network rejects iff at least T nodes
//    reject. Each node runs a single A_delta with delta = Theta(1/(eps^4 k)),
//    and T = Theta(1/eps^4) is placed between the expected reject counts
//    eta(U) = k*delta and eta(mu) >= (1+gamma*eps^2)*k*delta using the
//    Chernoff forms of paper eq. (5) — or exact binomial tails, which the
//    planner offers as a tighter alternative (ablated in bench/e5_threshold).

#include <cstdint>
#include <string>

#include "dut/core/amplified.hpp"
#include "dut/core/gap_tester.hpp"
#include "dut/core/sampler.hpp"
#include "dut/core/verdict.hpp"
#include "dut/stats/rng.hpp"

namespace dut::core {

// ---------------------------------------------------------------------------
// AND rule (Theorem 1.1)
// ---------------------------------------------------------------------------

struct AndRulePlan {
  // Inputs.
  std::uint64_t n = 0;
  std::uint64_t k = 0;
  double epsilon = 0.0;
  double p = 0.0;  ///< target error probability (both sides)

  // Outputs.
  bool feasible = false;
  std::string infeasible_reason;
  std::uint64_t repetitions = 0;     ///< m
  GapTesterParams base;              ///< per-run A_delta parameters
  std::uint64_t samples_per_node = 0;  ///< m * s

  /// Guaranteed lower bound on Pr[network accepts | uniform].
  double guaranteed_completeness = 0.0;
  /// Guaranteed lower bound on Pr[network rejects | eps-far].
  double guaranteed_soundness = 0.0;
};

/// Searches m in [1, max_repetitions] for the feasible plan with the fewest
/// samples per node. For each m the largest delta compatible with
/// completeness is delta_max(m) = (1 - (1-p)^{1/k})^{1/m}; the planner
/// instantiates A_delta at (up to) that delta, then checks that the
/// amplified gap alpha^m covers the soundness requirement
/// (alpha*delta)^m >= 1 - p^{1/k}.
AndRulePlan plan_and_rule(std::uint64_t n, std::uint64_t k, double epsilon,
                          double p, std::uint64_t max_repetitions = 64);

/// Simulates one full network trial under the AND rule: k nodes, each
/// running the planned repeated tester off `rng`. Voters = nodes; the
/// network accepts iff every node accepts (votes_reject == 0). Every node
/// is evaluated (no early exit), so the vote tally is exact.
[[nodiscard]] Verdict run_and_rule_network(const AndRulePlan& plan,
                             const AliasSampler& sampler,
                             stats::Xoshiro256& rng);

// ---------------------------------------------------------------------------
// Threshold rule (Theorem 1.2)
// ---------------------------------------------------------------------------

/// Which tail machinery the planner uses to place (delta, T).
enum class TailBound {
  kChernoff,       ///< the paper's eq. (5); conservative, closed-form
  kExactBinomial,  ///< exact Bin(k, q) tails; admits smaller networks
};

/// Result of placing a threshold over `ell` i.i.d. node testers.
struct ThresholdPlacement {
  bool feasible = false;
  std::uint64_t threshold = 0;
  double eta_uniform = 0.0;
  double eta_far = 0.0;
  double bound_false_reject = 1.0;
  double bound_false_accept = 1.0;
};

/// Places a rejection threshold for a network of `ell` nodes that each run
/// A_delta with the given (resolved) parameters: finds T such that both
/// Pr[R >= T | uniform] and Pr[R < T | eps-far] are bounded by p under the
/// chosen tail machinery. Shared by the 0-round threshold planner and the
/// CONGEST planner (where ell is the number of packages).
ThresholdPlacement place_threshold(std::uint64_t ell,
                                   const GapTesterParams& params, double p,
                                   TailBound bound);

struct ThresholdPlan {
  // Inputs.
  std::uint64_t n = 0;
  std::uint64_t k = 0;
  double epsilon = 0.0;
  double p = 0.0;
  TailBound bound = TailBound::kChernoff;

  // Outputs.
  bool feasible = false;
  std::string infeasible_reason;
  GapTesterParams base;      ///< per-node single-run A_delta parameters
  std::uint64_t threshold = 0;  ///< T: network rejects iff rejects >= T
  double eta_uniform = 0.0;  ///< k * delta (expected rejects under U)
  double eta_far = 0.0;      ///< k * alpha * delta (guaranteed minimum)
  /// Proven bound on Pr[R >= T | uniform] under the chosen tail machinery.
  double bound_false_reject = 1.0;
  /// Proven bound on Pr[R < T | eps-far] under the chosen tail machinery.
  double bound_false_accept = 1.0;
};

/// Finds the smallest expected-reject budget A = k*delta for which a
/// threshold T exists with both error bounds <= p, then resolves the
/// per-node tester at delta = A/k. `gamma_min` is the slack target used to
/// seed the search (the paper's distributed setting uses gamma >= 1/2).
ThresholdPlan plan_threshold(std::uint64_t n, std::uint64_t k, double epsilon,
                             double p = 1.0 / 3.0,
                             TailBound bound = TailBound::kChernoff,
                             double gamma_min = 0.5);

/// Simulates one full network trial under the threshold rule. Voters =
/// nodes; the network rejects iff votes_reject >= plan.threshold.
[[nodiscard]] Verdict run_threshold_network(const ThresholdPlan& plan,
                              const AliasSampler& sampler,
                              stats::Xoshiro256& rng);

}  // namespace dut::core
