#pragma once

// O(1) sampling from arbitrary discrete distributions via Walker/Vose alias
// tables. All Monte-Carlo experiments draw through this class, so it is the
// single hot path of the repository (see bench/m1_micro).
//
// Two layout/kernel choices, both measured by m1:
//
//  * The table is stored interleaved — acceptance probability and alias
//    index side by side in one 16-byte slot — so a draw touches exactly one
//    cache line instead of two.
//  * A draw consumes ONE 64-bit RNG output. The product x * n is taken in
//    128-bit fixed point: the high word is the column (unbiased up to
//    n / 2^64), the low word is the within-column fraction compared against
//    the acceptance probability. This halves the RNG work of the classic
//    (below, uniform01) pair while preserving exactness to 64 fractional
//    bits.

#include <cstdint>
#include <string>
#include <vector>

#include "dut/core/distribution.hpp"
#include "dut/stats/rng.hpp"

namespace dut::core {

class AliasSampler {
 public:
  /// Builds the alias table in O(n) (Vose's stable construction).
  explicit AliasSampler(const Distribution& distribution);

  /// Domain size.
  std::uint64_t n() const noexcept { return slots_.size(); }

  /// Draws one sample (an element of {0, ..., n-1}).
  std::uint64_t sample(stats::Xoshiro256& rng) const noexcept {
    return resolve(rng());
  }

  /// Draws `count` i.i.d. samples into a fresh vector.
  std::vector<std::uint64_t> sample_many(stats::Xoshiro256& rng,
                                         std::uint64_t count) const;

  /// Fills `out` with `count` i.i.d. samples (no allocation churn in loops).
  /// Generates in blocks of 64 raw draws so the RNG advances and the table
  /// lookups pipeline independently; the output stream is identical to
  /// `count` repeated sample() calls.
  void sample_into(stats::Xoshiro256& rng, std::uint64_t count,
                   std::vector<std::uint64_t>& out) const;

  /// The source Distribution's construction recipe (Distribution::spec()),
  /// carried along so experiment runners can stamp replay metadata without
  /// keeping the pmf alive. Empty for hand-built distributions.
  const std::string& spec() const noexcept { return spec_; }

 private:
  struct Slot {
    double probability;   // acceptance probability of this column
    std::uint64_t alias;  // fallback element on rejection
  };

  std::uint64_t resolve(std::uint64_t raw) const noexcept {
    const unsigned __int128 scaled =
        static_cast<unsigned __int128>(raw) * slots_.size();
    const auto column = static_cast<std::uint64_t>(scaled >> 64);
    const auto fraction = static_cast<std::uint64_t>(scaled);
    const Slot& slot = slots_[column];
    constexpr double kInv64 = 0x1.0p-64;
    return static_cast<double>(fraction) * kInv64 < slot.probability
               ? column
               : slot.alias;
  }

  std::vector<Slot> slots_;
  std::string spec_;
};

}  // namespace dut::core
