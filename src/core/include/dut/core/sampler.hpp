#pragma once

// O(1) sampling from arbitrary discrete distributions via Walker/Vose alias
// tables. All Monte-Carlo experiments draw through this class, so it is the
// single hot path of the repository (see bench/m1_micro).

#include <cstdint>
#include <vector>

#include "dut/core/distribution.hpp"
#include "dut/stats/rng.hpp"

namespace dut::core {

class AliasSampler {
 public:
  /// Builds the alias table in O(n) (Vose's stable construction).
  explicit AliasSampler(const Distribution& distribution);

  /// Domain size.
  std::uint64_t n() const noexcept { return probability_.size(); }

  /// Draws one sample (an element of {0, ..., n-1}).
  std::uint64_t sample(stats::Xoshiro256& rng) const noexcept;

  /// Draws `count` i.i.d. samples into a fresh vector.
  std::vector<std::uint64_t> sample_many(stats::Xoshiro256& rng,
                                         std::uint64_t count) const;

  /// Appends `count` i.i.d. samples to `out` (no allocation churn in loops).
  void sample_into(stats::Xoshiro256& rng, std::uint64_t count,
                   std::vector<std::uint64_t>& out) const;

 private:
  std::vector<double> probability_;  // acceptance probability per column
  std::vector<std::uint64_t> alias_;
};

}  // namespace dut::core
