#pragma once

// The unified outcome type of every distributed uniformity-testing trial.
//
// The paper's decision rules all share one shape: some population of voters
// (physical nodes for the 0-round rules, token packages for CONGEST, MIS
// nodes for LOCAL, repetitions for amplification) each cast a reject/accept
// vote, and a network rule turns the vote counts into a single verdict.
// Verdict captures exactly that, plus the resources the trial consumed, so
// benches, tests and the CLI read every tester's result the same way.

#include <cstdint>

namespace dut::core {

struct [[nodiscard]] Verdict {
  /// The network-level decision ("the input looks uniform").
  bool accepts = true;

  /// Decision statistic: the fraction of voters that rejected
  /// (votes_reject / votes_total; 0 when there are no voters).
  double score = 0.0;

  /// Per-voter tallies. What a "voter" is depends on the rule: a node
  /// (0-round), a token package (CONGEST), an MIS node (LOCAL), a
  /// repetition (amplified majority).
  std::uint64_t votes_reject = 0;
  std::uint64_t votes_total = 0;

  /// Synchronous rounds consumed (0 for the 0-round rules).
  std::uint64_t rounds = 0;
  /// Total communication in bits (0 for the 0-round rules).
  std::uint64_t bits = 0;

  bool rejects() const noexcept { return !accepts; }

  [[nodiscard]] static Verdict make(bool accepts, std::uint64_t votes_reject,
                      std::uint64_t votes_total, std::uint64_t rounds = 0,
                      std::uint64_t bits = 0) noexcept {
    Verdict v;
    v.accepts = accepts;
    v.votes_reject = votes_reject;
    v.votes_total = votes_total;
    v.score = votes_total == 0
                  ? 0.0
                  : static_cast<double>(votes_reject) /
                        static_cast<double>(votes_total);
    v.rounds = rounds;
    v.bits = bits;
    return v;
  }
};

}  // namespace dut::core
