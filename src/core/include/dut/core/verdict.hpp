#pragma once

// The unified outcome type of every distributed uniformity-testing trial.
//
// The paper's decision rules all share one shape: some population of voters
// (physical nodes for the 0-round rules, token packages for CONGEST, MIS
// nodes for LOCAL, repetitions for amplification) each cast a reject/accept
// vote, and a network rule turns the vote counts into a single verdict.
// Verdict captures exactly that, plus the resources the trial consumed, so
// benches, tests and the CLI read every tester's result the same way.
//
// Anytime extension: sequential testers (stats::SequentialTester — the
// serve layer's early-stopping collision testers, the fleet monitor) emit
// verdicts *before* a fixed sample budget is exhausted, and may be asked
// for one before any decision exists. `status` distinguishes the three
// outcomes (an undecided verdict keeps accepts == true: no evidence of
// non-uniformity has been produced yet), `samples_consumed` records what
// the decision actually cost, and `confidence` carries the guaranteed
// error bound of the emitted side. One-shot testers keep the two-state
// world: Verdict::make derives status from accepts, and the anytime fields
// stay at their "not tracked" zeros.

#include <cstdint>

namespace dut::core {

/// Three-state outcome of an anytime tester. kUndecided means "not enough
/// evidence yet" — only sequential testers ever emit it.
enum class VerdictStatus : std::uint8_t {
  kUndecided = 0,
  kAccept = 1,
  kReject = 2,
};

struct [[nodiscard]] Verdict {
  /// The network-level decision ("the input looks uniform").
  bool accepts = true;

  /// Anytime status; Verdict::make keeps it in lockstep with `accepts`,
  /// Verdict::make_anytime may set kUndecided (with accepts == true).
  VerdictStatus status = VerdictStatus::kAccept;

  /// Decision statistic: the fraction of voters that rejected
  /// (votes_reject / votes_total; 0 when there are no voters).
  double score = 0.0;

  /// Per-voter tallies. What a "voter" is depends on the rule: a node
  /// (0-round), a token package (CONGEST), an MIS node (LOCAL), a
  /// repetition (amplified majority), a sliding window (sequential).
  std::uint64_t votes_reject = 0;
  std::uint64_t votes_total = 0;

  /// Synchronous rounds consumed (0 for the 0-round rules).
  std::uint64_t rounds = 0;
  /// Total communication in bits (0 for the 0-round rules).
  std::uint64_t bits = 0;

  /// Samples the tester actually consumed before deciding (0 = not
  /// tracked; one-shot testers always spend their full planned budget).
  std::uint64_t samples_consumed = 0;
  /// 1 - (guaranteed error bound of the emitted side); 0 when undecided
  /// or not tracked.
  double confidence = 0.0;

  bool rejects() const noexcept { return !accepts; }
  bool decided() const noexcept { return status != VerdictStatus::kUndecided; }

  [[nodiscard]] static Verdict make(bool accepts, std::uint64_t votes_reject,
                      std::uint64_t votes_total, std::uint64_t rounds = 0,
                      std::uint64_t bits = 0) noexcept {
    Verdict v;
    v.accepts = accepts;
    v.status = accepts ? VerdictStatus::kAccept : VerdictStatus::kReject;
    v.votes_reject = votes_reject;
    v.votes_total = votes_total;
    v.score = votes_total == 0
                  ? 0.0
                  : static_cast<double>(votes_reject) /
                        static_cast<double>(votes_total);
    v.rounds = rounds;
    v.bits = bits;
    return v;
  }

  /// The anytime funnel: routes through make() (so score/tally/bits
  /// accounting stays in one place), then overlays the sequential fields.
  /// kUndecided maps to accepts == true — an undecided monitor has raised
  /// no alarm. `confidence` is clamped to [0, 1] and forced to 0 while
  /// undecided.
  [[nodiscard]] static Verdict make_anytime(
      VerdictStatus status, std::uint64_t votes_reject,
      std::uint64_t votes_total, std::uint64_t samples_consumed,
      double confidence, std::uint64_t rounds = 0,
      std::uint64_t bits = 0) noexcept {
    Verdict v = make(status != VerdictStatus::kReject, votes_reject,
                     votes_total, rounds, bits);
    v.status = status;
    v.samples_consumed = samples_consumed;
    if (confidence < 0.0) confidence = 0.0;
    if (confidence > 1.0) confidence = 1.0;
    v.confidence = status == VerdictStatus::kUndecided ? 0.0 : confidence;
    return v;
  }
};

}  // namespace dut::core
