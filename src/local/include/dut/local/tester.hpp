#pragma once

// LOCAL-model uniformity testing (paper Section 6).
//
// Strategy: compute an MIS S of the power graph G^r (Luby), route every
// node's samples to an MIS node within distance r (possible by maximality),
// and let each MIS node act as a "virtual node" of the 0-round AND-rule
// tester of Theorem 1.1. The network accepts iff every MIS node accepts —
// the standard LOCAL decision semantics.
//
// Round accounting (in G): one G^r round costs r G-rounds, so the MIS takes
// 3 * phases * r rounds, and the gather flood takes r rounds. LOCAL allows
// unbounded messages, so routing is plain r-round flooding of
// (origin, destination, samples) records.
//
// The planner picks the smallest radius r whose MIS is simultaneously
// large enough for the AND-rule regime and sparse enough that every MIS
// node gathers the samples the per-node tester needs — the concrete form of
// the paper's r = Theta(...)^{1/(1 - Theta(eps^2/C_p))} balance. Each node
// may hold several samples (the paper's "s = 1 is not essential").

#include <cstdint>
#include <string>
#include <vector>

#include "dut/core/sampler.hpp"
#include "dut/core/verdict.hpp"
#include "dut/core/zero_round.hpp"
#include "dut/local/mis.hpp"
#include "dut/net/engine.hpp"
#include "dut/net/fault.hpp"
#include "dut/net/graph.hpp"
#include "dut/net/protocol_driver.hpp"

namespace dut::local {

struct LocalPlan {
  // Inputs.
  std::uint64_t n = 0;
  double epsilon = 0.0;
  double p = 0.0;
  std::uint64_t samples_per_node = 1;  ///< s: samples held by each node
  /// The planning seed and radius cap that were passed to plan_local,
  /// recorded so replay metadata can regenerate the identical plan (the MIS
  /// draws depend on both).
  std::uint64_t plan_seed = 0;
  std::uint32_t planned_max_radius = 0;

  // Outputs.
  bool feasible = false;
  std::string infeasible_reason;
  std::uint32_t radius = 0;  ///< r: MIS runs on G^r, gather floods r hops
  std::vector<bool> in_mis;
  /// assignment[v] = the MIS node within distance r that collects v's
  /// samples (MIS nodes are assigned to themselves).
  std::vector<std::uint32_t> assignment;
  std::uint64_t mis_size = 0;
  std::uint64_t min_gathered = 0;  ///< min samples at any MIS node
  std::uint64_t max_gathered = 0;
  core::AndRulePlan and_plan;      ///< Theorem 1.1 over mis_size nodes
  std::uint64_t mis_phases = 0;    ///< Luby phases used during planning
  /// Total G-rounds: 3 * mis_phases * r (MIS on G^r) + r (gather).
  std::uint64_t rounds_in_g = 0;
};

/// Plans the LOCAL tester for a concrete topology: scans r = 1, 2, ... and
/// returns the smallest radius whose MIS admits a feasible AND-rule plan
/// fully fed by the gathered samples.
LocalPlan plan_local(std::uint64_t n, const net::Graph& graph, double epsilon,
                     double p, std::uint64_t samples_per_node,
                     std::uint64_t seed, std::uint32_t max_radius = 64);

struct LocalRunResult {
  /// Voters = MIS nodes; accepts iff every MIS node accepts (AND rule).
  core::Verdict verdict;
  /// Fault runs only: MIS nodes that gathered fewer samples than the
  /// per-node tester needs (each votes reject — one-sided soundness).
  std::uint64_t mis_shortfalls = 0;
  net::EngineMetrics gather_metrics;  ///< the r-round flood on G
};

/// Builds the protocol driver for the plan's r-round gather flood on
/// `graph` (validates the plan/graph pairing once). The driver references
/// `graph`; one driver serves a whole Monte-Carlo sweep, including
/// concurrent trials. Passing `faults` attaches the fault plan and switches
/// the tester to its degraded-mode rules: gather records that arrive
/// corrupted (malformed layout or an out-of-range origin) are discarded,
/// and an MIS node starved below its planned sample count votes reject
/// instead of aborting the run.
net::ProtocolDriver make_local_driver(const LocalPlan& plan,
                                      const net::Graph& graph,
                                      const net::FaultPlan* faults = nullptr);

/// Runs the planned tester: draws samples_per_node samples per node from
/// `sampler`, floods them to the assigned MIS nodes via the LOCAL engine,
/// and runs the AND-rule repeated collision tester at each MIS node.
/// Reuses a pooled engine and gates DUT_TRACE resolution with `traced`
/// (pass true for exactly one designated trial when fanning out in
/// parallel). Deterministic per seed at any DUT_THREADS.
[[nodiscard]] LocalRunResult run_local_uniformity(const LocalPlan& plan,
                                    net::ProtocolDriver& driver,
                                    const core::AliasSampler& sampler,
                                    std::uint64_t seed, bool traced = true);

}  // namespace dut::local
