#pragma once

// Luby's maximal-independent-set algorithm as a LOCAL-model node program.
//
// Each phase takes three rounds: (A) every undecided node draws a fresh
// random priority and sends it to its undecided neighbors; (B) a node whose
// (priority, id) pair beats all undecided neighbors joins the MIS and
// announces JOINED; (C) nodes hearing JOINED leave the contention as OUT and
// announce it, letting the remaining undecided nodes prune their neighbor
// sets. Whp O(log k) phases suffice (Luby 1986).
//
// The paper's LOCAL tester (Section 6) runs this on the power graph G^r so
// that MIS nodes are pairwise more than r apart, guaranteeing each collects
// the samples of at least r/2 nodes.

#include <cstdint>
#include <vector>

#include "dut/net/engine.hpp"
#include "dut/net/fault.hpp"
#include "dut/net/graph.hpp"

namespace dut::local {

class LubyMisProgram : public net::NodeProgram {
 public:
  enum class State { kUndecided, kInMis, kOut };

  LubyMisProgram() = default;
  /// Round-timeout fallback: a node still undecided when phase
  /// `max_phases` begins resigns to kOut and halts. On a healthy network
  /// Luby terminates in O(log k) phases whp, so a generous cap never
  /// fires; under message faults it bounds the run even when priority or
  /// JOINED announcements were lost (the resulting set may then miss
  /// maximality — the caller's timeout semantics, not a silent hang).
  explicit LubyMisProgram(std::uint64_t max_phases)
      : max_phases_(max_phases) {}

  void on_round(net::NodeContext& ctx) override;

  State state() const noexcept { return state_; }
  bool in_mis() const noexcept { return state_ == State::kInMis; }
  /// True iff the phase cap forced this node out (see ctor).
  bool timed_out() const noexcept { return timed_out_; }

 private:
  enum Tag : std::uint64_t { kPriority = 0, kJoined = 1, kOut = 2 };

  State state_ = State::kUndecided;
  bool initialized_ = false;
  std::vector<bool> undecided_;     ///< per neighbor index
  std::uint32_t undecided_count_ = 0;
  std::uint64_t priority_ = 0;
  bool priority_beaten_ = false;    ///< a neighbor outbid us this phase
  std::uint64_t max_phases_ = UINT64_MAX;
  bool timed_out_ = false;
  bool decided_pending_halt_ = false;
};

struct MisResult {
  std::vector<bool> in_mis;
  std::uint64_t phases = 0;  ///< 3 rounds per phase
  std::uint64_t fallback_outs = 0;  ///< nodes forced out by the phase cap
  net::EngineMetrics metrics;
};

/// Runs Luby's algorithm on `graph` under the LOCAL engine; deterministic
/// per seed. The result is verified independent and maximal by the tests.
MisResult compute_mis(const net::Graph& graph, std::uint64_t seed);

/// Fault-tolerant variant: runs under `faults` (engine fault mode when
/// non-null) with the phase-cap fallback. Independence still holds on a
/// healthy network; under faults the set is best-effort (lost JOINED
/// announcements can break independence, lost priorities maximality) but
/// the run always terminates within max_phases phases.
MisResult compute_mis(const net::Graph& graph, std::uint64_t seed,
                      const net::FaultPlan* faults, std::uint64_t max_phases);

}  // namespace dut::local
