#pragma once

// Luby's maximal-independent-set algorithm as a LOCAL-model node program.
//
// Each phase takes three rounds: (A) every undecided node draws a fresh
// random priority and sends it to its undecided neighbors; (B) a node whose
// (priority, id) pair beats all undecided neighbors joins the MIS and
// announces JOINED; (C) nodes hearing JOINED leave the contention as OUT and
// announce it, letting the remaining undecided nodes prune their neighbor
// sets. Whp O(log k) phases suffice (Luby 1986).
//
// The paper's LOCAL tester (Section 6) runs this on the power graph G^r so
// that MIS nodes are pairwise more than r apart, guaranteeing each collects
// the samples of at least r/2 nodes.

#include <cstdint>
#include <vector>

#include "dut/net/engine.hpp"
#include "dut/net/graph.hpp"

namespace dut::local {

class LubyMisProgram : public net::NodeProgram {
 public:
  enum class State { kUndecided, kInMis, kOut };

  void on_round(net::NodeContext& ctx) override;

  State state() const noexcept { return state_; }
  bool in_mis() const noexcept { return state_ == State::kInMis; }

 private:
  enum Tag : std::uint64_t { kPriority = 0, kJoined = 1, kOut = 2 };

  State state_ = State::kUndecided;
  bool initialized_ = false;
  std::vector<bool> undecided_;     ///< per neighbor index
  std::uint32_t undecided_count_ = 0;
  std::uint64_t priority_ = 0;
  bool priority_beaten_ = false;    ///< a neighbor outbid us this phase
  std::uint64_t halt_round_ = 0;    ///< grace round before halting
  bool decided_pending_halt_ = false;
};

struct MisResult {
  std::vector<bool> in_mis;
  std::uint64_t phases = 0;  ///< 3 rounds per phase
  net::EngineMetrics metrics;
};

/// Runs Luby's algorithm on `graph` under the LOCAL engine; deterministic
/// per seed. The result is verified independent and maximal by the tests.
MisResult compute_mis(const net::Graph& graph, std::uint64_t seed);

}  // namespace dut::local
