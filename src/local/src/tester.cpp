#include "dut/local/tester.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "dut/core/amplified.hpp"
#include "dut/net/message.hpp"
#include "dut/obs/phase_timer.hpp"

namespace dut::local {

namespace {

/// Nearest-MIS-node assignment via multi-source BFS on G (ties go to the
/// source dequeued first; sources are enqueued in id order, so the result
/// is deterministic). Returns (assignment, distance).
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
assign_to_mis(const net::Graph& graph, const std::vector<bool>& in_mis) {
  const std::uint32_t k = graph.num_nodes();
  std::vector<std::uint32_t> owner(k, UINT32_MAX);
  std::vector<std::uint32_t> dist(k, UINT32_MAX);
  std::queue<std::uint32_t> frontier;
  for (std::uint32_t v = 0; v < k; ++v) {
    if (in_mis[v]) {
      owner[v] = v;
      dist[v] = 0;
      frontier.push(v);
    }
  }
  while (!frontier.empty()) {
    const std::uint32_t v = frontier.front();
    frontier.pop();
    for (const std::uint32_t u : graph.neighbors(v)) {
      if (owner[u] == UINT32_MAX) {
        owner[u] = owner[v];
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return {std::move(owner), std::move(dist)};
}

/// r-round TTL flood of (origin, destination, samples) records on G.
/// All nodes halt together at round r, by which time every record has
/// reached its destination (distance <= r by MIS maximality on G^r).
class GatherProgram : public net::NodeProgram {
 public:
  GatherProgram(std::uint32_t k, std::uint32_t radius, std::uint32_t dest,
                std::vector<std::uint64_t> own_samples, unsigned sample_bits)
      : radius_(radius),
        dest_(dest),
        own_samples_(std::move(own_samples)),
        sample_bits_(sample_bits),
        seen_(k, false) {}

  const std::vector<std::uint64_t>& collected() const noexcept {
    return collected_;
  }

  void on_round(net::NodeContext& ctx) override {
    struct Record {
      std::uint64_t origin;
      std::uint64_t dest;
      std::uint64_t ttl;
      std::vector<std::uint64_t> samples;
    };
    std::vector<Record> pending;

    if (ctx.round() == 0) {
      seen_[ctx.id()] = true;
      if (dest_ == ctx.id()) {
        collected_.insert(collected_.end(), own_samples_.begin(),
                          own_samples_.end());
      } else {
        pending.push_back(Record{ctx.id(), dest_, radius_, own_samples_});
      }
    }

    // Bounds-checked parse: on a healthy network every check passes by
    // construction; under payload corruption (net::FaultPlan) a malformed
    // record ends the message (the rest is unparseable once a length field
    // lies) and an out-of-range origin is discarded.
    for (const net::MessageView msg : ctx.inbox()) {
      const auto fields = msg.fields();
      std::size_t f = 0;
      if (fields.empty()) continue;
      const std::uint64_t count = fields[f++];
      for (std::uint64_t i = 0; i < count; ++i) {
        if (f + 4 > fields.size()) break;
        Record rec;
        rec.origin = fields[f++];
        rec.dest = fields[f++];
        rec.ttl = fields[f++];
        const std::uint64_t num_samples = fields[f++];
        if (num_samples > fields.size() - f) break;
        rec.samples.assign(fields.begin() + static_cast<long>(f),
                           fields.begin() + static_cast<long>(f + num_samples));
        f += num_samples;
        if (rec.origin >= seen_.size() || seen_[rec.origin]) continue;
        seen_[rec.origin] = true;
        if (rec.dest == ctx.id()) {
          collected_.insert(collected_.end(), rec.samples.begin(),
                            rec.samples.end());
        } else if (rec.ttl > 0 && rec.ttl <= radius_) {
          --rec.ttl;
          pending.push_back(std::move(rec));
        }
      }
    }

    if (ctx.round() >= radius_) {
      ctx.halt();
      return;
    }
    if (!pending.empty()) {
      net::Message msg;
      msg.push_field(pending.size(), 32);
      for (const Record& rec : pending) {
        msg.push_field(rec.origin, 32);
        msg.push_field(rec.dest, 32);
        msg.push_field(rec.ttl, 32);
        msg.push_field(rec.samples.size(), 32);
        for (const std::uint64_t s : rec.samples) {
          msg.push_field(s, sample_bits_);
        }
      }
      ctx.broadcast(msg);
    }
  }

 private:
  std::uint32_t radius_;
  std::uint32_t dest_;
  std::vector<std::uint64_t> own_samples_;
  unsigned sample_bits_;
  std::vector<bool> seen_;
  std::vector<std::uint64_t> collected_;
};

}  // namespace

LocalPlan plan_local(std::uint64_t n, const net::Graph& graph, double epsilon,
                     double p, std::uint64_t samples_per_node,
                     std::uint64_t seed, std::uint32_t max_radius) {
  if (samples_per_node == 0) {
    throw std::invalid_argument("plan_local: samples_per_node must be >= 1");
  }
  LocalPlan plan;
  plan.n = n;
  plan.epsilon = epsilon;
  plan.p = p;
  plan.samples_per_node = samples_per_node;
  plan.plan_seed = seed;
  plan.planned_max_radius = max_radius;

  const std::uint32_t k = graph.num_nodes();

  // Smallest virtual-node count for which the AND-rule planner is feasible
  // at all (feasibility is monotone in k'): prunes the radius scan, since
  // the MIS only shrinks as r grows.
  std::uint64_t k_min = 0;
  for (std::uint64_t candidate = 2; candidate <= k; candidate *= 2) {
    if (core::plan_and_rule(n, candidate, epsilon, p).feasible) {
      k_min = candidate / 2 + 1;  // true minimum is in (candidate/2, candidate]
      break;
    }
  }
  if (k_min == 0) {
    plan.infeasible_reason =
        "the AND-rule 0-round tester is infeasible at every virtual-node "
        "count up to k for this (n, eps, p)";
    return plan;
  }

  // Coarse radius ladder: smallest feasible r wins on round complexity.
  for (std::uint32_t r = 1; r <= max_radius; r = r < 4 ? r + 1 : (r * 3) / 2) {
    const net::Graph power = graph.power(r);
    if (power.num_edges() > 2'000'000) break;  // dense => MIS far too small
    const MisResult mis = compute_mis(power, stats::SplitMix64(seed ^ r).next());
    const std::uint64_t mis_size = static_cast<std::uint64_t>(
        std::count(mis.in_mis.begin(), mis.in_mis.end(), true));
    if (mis_size <= 1 || mis_size < k_min) break;  // shrinks as r grows

    const auto [owner, dist] = assign_to_mis(graph, mis.in_mis);
    std::vector<std::uint64_t> gathered(k, 0);
    for (std::uint32_t v = 0; v < k; ++v) {
      if (dist[v] > r) {
        throw std::logic_error(
            "plan_local: node farther than r from every MIS node — the MIS "
            "is not maximal on G^r");
      }
      gathered[owner[v]] += samples_per_node;
    }
    std::uint64_t min_gathered = UINT64_MAX;
    std::uint64_t max_gathered = 0;
    for (std::uint32_t v = 0; v < k; ++v) {
      if (!mis.in_mis[v]) continue;
      min_gathered = std::min(min_gathered, gathered[v]);
      max_gathered = std::max(max_gathered, gathered[v]);
    }

    const core::AndRulePlan and_plan =
        core::plan_and_rule(n, mis_size, epsilon, p);
    if (!and_plan.feasible) continue;
    if (min_gathered < and_plan.samples_per_node) continue;

    plan.feasible = true;
    plan.radius = r;
    plan.in_mis = mis.in_mis;
    plan.assignment = owner;
    plan.mis_size = mis_size;
    plan.min_gathered = min_gathered;
    plan.max_gathered = max_gathered;
    plan.and_plan = and_plan;
    plan.mis_phases = mis.phases;
    plan.rounds_in_g = 3 * mis.phases * r + r;
    return plan;
  }

  plan.infeasible_reason =
      "no radius r yields an MIS that is both large enough for the AND-rule "
      "regime and sample-rich enough to feed the per-node testers";
  return plan;
}

net::ProtocolDriver make_local_driver(const LocalPlan& plan,
                                      const net::Graph& graph,
                                      const net::FaultPlan* faults) {
  if (!plan.feasible) {
    throw std::logic_error("make_local_driver: plan is infeasible");
  }
  if (plan.assignment.size() != graph.num_nodes()) {
    throw std::invalid_argument("make_local_driver: plan/graph mismatch");
  }
  net::EngineConfig config;
  config.model = net::Model::kLocal;
  config.max_rounds = plan.radius + 2;
  if (faults != nullptr) {
    return net::ProtocolDriver(graph, config, *faults);
  }
  return net::ProtocolDriver(graph, config);
}

namespace {

/// %.17g round-trips doubles exactly, so replay metadata regenerates
/// byte-identically from the parsed-back values.
std::string format_param(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Replay preamble for a LOCAL gather run: enough to regenerate the plan
/// (plan_local reruns the MIS ladder from plan_seed), the driver and the
/// sampler, then re-run this seed.
std::vector<std::pair<std::string, std::string>> local_annotations(
    const LocalPlan& plan, const net::ProtocolDriver& driver,
    const core::AliasSampler& sampler) {
  std::vector<std::pair<std::string, std::string>> ann;
  ann.emplace_back("proto", "local_uniformity");
  ann.emplace_back("topo", driver.graph().spec());
  ann.emplace_back("dist", sampler.spec());
  ann.emplace_back("n", std::to_string(plan.n));
  ann.emplace_back("eps", format_param(plan.epsilon));
  ann.emplace_back("p", format_param(plan.p));
  ann.emplace_back("s0", std::to_string(plan.samples_per_node));
  ann.emplace_back("plan_seed", std::to_string(plan.plan_seed));
  ann.emplace_back("max_r", std::to_string(plan.planned_max_radius));
  if (driver.fault_plan() != nullptr) {
    ann.emplace_back("faults", driver.fault_plan()->spec());
  }
  return ann;
}

}  // namespace

LocalRunResult run_local_uniformity(const LocalPlan& plan,
                                    net::ProtocolDriver& driver,
                                    const core::AliasSampler& sampler,
                                    std::uint64_t seed, bool traced) {
  if (sampler.n() != plan.n) {
    throw std::invalid_argument("run_local_uniformity: domain mismatch");
  }

  const std::uint32_t k = driver.graph().num_nodes();
  const unsigned sample_bits = net::bits_for(plan.n);
  const core::RepeatedGapTester tester(plan.and_plan.base,
                                       plan.and_plan.repetitions);
  // Fault runs degrade gracefully: a starved MIS node votes reject rather
  // than aborting (reject-bias preserves one-sided soundness).
  const bool faulty = driver.fault_plan() != nullptr;

  // Pre-draw each node's samples into the "sample" phase span. Unlike the
  // CONGEST runner there is no shared stream to preserve: node v's draws
  // come from its own derive_stream(seed, v), so hoisting them out of the
  // make callback is order-independent.
  std::vector<std::vector<std::uint64_t>> samples(k);
  {
    obs::PhaseTimer span("sample");
    for (std::uint32_t v = 0; v < k; ++v) {
      stats::Xoshiro256 rng = stats::derive_stream(seed, v);
      samples[v] = sampler.sample_many(rng, plan.samples_per_node);
    }
  }

  obs::PhaseTimer route_span("route");
  return driver.run_trial(
      seed, traced, local_annotations(plan, driver, sampler),
      [&](std::uint32_t v) {
        return std::make_unique<GatherProgram>(k, plan.radius,
                                               plan.assignment[v],
                                               std::move(samples[v]),
                                               sample_bits);
      },
      [&](const auto& programs, const net::EngineMetrics& metrics) {
        obs::PhaseTimer span("decide");
        LocalRunResult result;
        result.gather_metrics = metrics;
        std::uint64_t rejecting = 0;
        for (std::uint32_t v = 0; v < k; ++v) {
          if (!plan.in_mis[v]) continue;
          const auto& samples = programs[v]->collected();
          if (samples.size() < tester.total_samples()) {
            if (!faulty) {
              throw std::logic_error(
                  "run_local_uniformity: MIS node gathered fewer samples "
                  "than planned");
            }
            ++result.mis_shortfalls;
            ++rejecting;
            continue;
          }
          if (!tester.decide(samples)) ++rejecting;
        }
        result.verdict =
            core::Verdict::make(rejecting == 0, rejecting, plan.mis_size,
                                metrics.rounds, metrics.total_bits);
        return result;
      });
}

}  // namespace dut::local
