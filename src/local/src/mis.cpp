#include "dut/local/mis.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dut::local {

void LubyMisProgram::on_round(net::NodeContext& ctx) {
  if (!initialized_) {
    initialized_ = true;
    undecided_.assign(ctx.degree(), true);
    undecided_count_ = ctx.degree();
  }

  const std::uint64_t sub = ctx.round() % 3;

  // Process the inbox first: priorities in sub 1, JOINED in sub 2, OUT in
  // sub 0 (sent during the previous phase's sub 2).
  for (const net::MessageView msg : ctx.inbox()) {
    const auto neighbors = ctx.neighbors();
    std::size_t idx = 0;
    while (neighbors[idx] != msg.sender) ++idx;
    switch (static_cast<Tag>(msg.field(0))) {
      case kPriority: {
        const std::uint64_t their_priority = msg.field(1);
        // Lexicographic (priority, id) tie-break keeps adjacent double-wins
        // impossible even on (vanishingly unlikely) equal priorities.
        if (their_priority > priority_ ||
            (their_priority == priority_ && msg.sender > ctx.id())) {
          priority_beaten_ = true;
        }
        break;
      }
      case kJoined: {
        if (state_ == State::kUndecided) state_ = State::kOut;
        if (undecided_[idx]) {
          undecided_[idx] = false;
          --undecided_count_;
        }
        break;
      }
      case kOut: {
        if (undecided_[idx]) {
          undecided_[idx] = false;
          --undecided_count_;
        }
        break;
      }
    }
  }

  if (decided_pending_halt_) {
    // Grace round absorbed (simultaneous OUT announcements); leave now.
    ctx.halt();
    return;
  }

  if (state_ == State::kUndecided && ctx.round() / 3 >= max_phases_) {
    // Round-timeout fallback (fault runs): resign instead of hanging on
    // announcements that may have been dropped.
    state_ = State::kOut;
    timed_out_ = true;
    ctx.halt();
    return;
  }

  switch (sub) {
    case 0: {  // A: draw and exchange priorities
      if (state_ != State::kUndecided) break;
      if (undecided_count_ == 0) {
        // No contention left: join and leave silently (nobody listens).
        state_ = State::kInMis;
        ctx.halt();
        return;
      }
      priority_ = ctx.rng()();
      priority_beaten_ = false;
      net::Message msg;
      msg.push_field(kPriority, 2);
      msg.push_field(priority_, 64);
      const auto neighbors = ctx.neighbors();
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (undecided_[i]) ctx.send(neighbors[i], msg);
      }
      break;
    }
    case 1: {  // B: winners join and announce
      if (state_ != State::kUndecided) break;
      if (!priority_beaten_) {
        state_ = State::kInMis;
        net::Message msg;
        msg.push_field(kJoined, 2);
        const auto neighbors = ctx.neighbors();
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          if (undecided_[i]) ctx.send(neighbors[i], msg);
        }
        // Safe to leave immediately: neighbors prune us from their
        // undecided sets before any further sends (see module comment).
        ctx.halt();
        return;
      }
      break;
    }
    case 2: {  // C: JOINED receivers drop out and announce
      if (state_ == State::kOut) {
        net::Message msg;
        msg.push_field(kOut, 2);
        const auto neighbors = ctx.neighbors();
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          if (undecided_[i]) ctx.send(neighbors[i], msg);
        }
        // One grace round: a simultaneous dropout may still announce to us.
        decided_pending_halt_ = true;
      }
      break;
    }
  }
}

MisResult compute_mis(const net::Graph& graph, std::uint64_t seed) {
  return compute_mis(graph, seed, nullptr, UINT64_MAX);
}

MisResult compute_mis(const net::Graph& graph, std::uint64_t seed,
                      const net::FaultPlan* faults,
                      std::uint64_t max_phases) {
  if (max_phases == 0) {
    throw std::invalid_argument("compute_mis: max_phases must be >= 1");
  }
  const std::uint32_t k = graph.num_nodes();
  std::vector<std::unique_ptr<LubyMisProgram>> programs;
  programs.reserve(k);
  std::vector<net::NodeProgram*> raw;
  raw.reserve(k);
  for (std::uint32_t v = 0; v < k; ++v) {
    programs.push_back(std::make_unique<LubyMisProgram>(max_phases));
    raw.push_back(programs.back().get());
  }

  net::EngineConfig config;
  config.model = net::Model::kLocal;
  // Luby needs O(log k) phases whp; the phase cap (when set) dominates.
  config.max_rounds =
      max_phases == UINT64_MAX ? 10000 : 3 * max_phases + 10;
  config.seed = seed;
  net::Engine engine(graph, config);
  if (faults != nullptr) engine.set_fault_plan(*faults);
  if (!graph.spec().empty()) {
    // Replay preamble: the run seed is already in run_start, so the spec'd
    // topology (plus the optional phase cap and fault plan) fully determines
    // this run. Hand-built graphs have no spec and stay unreplayable.
    std::vector<std::pair<std::string, std::string>> ann;
    ann.emplace_back("proto", "mis");
    ann.emplace_back("topo", graph.spec());
    if (max_phases != UINT64_MAX) {
      ann.emplace_back("cap", std::to_string(max_phases));
    }
    if (faults != nullptr) ann.emplace_back("faults", faults->spec());
    engine.set_run_annotations(std::move(ann));
  }
  engine.run(raw);

  MisResult result;
  result.metrics = engine.metrics();
  result.phases = (engine.metrics().rounds + 2) / 3;
  result.in_mis.resize(k);
  for (std::uint32_t v = 0; v < k; ++v) {
    if (programs[v]->state() == LubyMisProgram::State::kUndecided) {
      if (faults == nullptr) {
        throw std::logic_error("compute_mis: node finished undecided");
      }
      // Crashed (engine-halted) before it could resign: counts as forced
      // out, like a phase-cap timeout.
      ++result.fallback_outs;
    }
    result.in_mis[v] = programs[v]->in_mis();
    if (programs[v]->timed_out()) ++result.fallback_outs;
  }
  return result;
}

}  // namespace dut::local
