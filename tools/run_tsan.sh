#!/usr/bin/env bash
# Race-checks the parallel Monte-Carlo engine and the observability layer:
# builds the stats + core + obs + net test binaries (and the traced
# experiments) under ThreadSanitizer, then runs them with a worker pool
# large enough to exercise every chunk-handoff path even on small CI
# machines. Tracing is exercised concurrently: DUT_TRACE points every
# parallel trial's engine at one transcript file, so the writer's
# process-wide lock and the lock-free metrics registry both get contended.
# dut_net_tests includes the ShmSession suites, whose thread-based
# participants contend on the session's lockstep atomics (exchange parity
# buffers, trial mailbox, rings) — the shm transport's synchronization
# primitives under TSan; e16_transport then drives the forked multi-process
# backend end to end with a traced, merged 2-rank trial.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan -DDUT_BUILD_BENCH=ON
cmake --build --preset tsan -j "$(nproc)" \
  --target dut_stats_tests dut_core_tests dut_obs_tests dut_net_tests \
           dut_serve_tests dut_integration_tests e7_token_packaging \
           e8_congest e9_local e15_fault_tolerance e16_transport e17_serve \
           dut_trace dut_lint

export DUT_THREADS="${DUT_THREADS:-8}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

echo "== dut_obs_tests (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_obs_tests

echo "== dut_stats_tests (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_stats_tests

echo "== dut_core_tests engine-facing slices (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_core_tests \
  --gtest_filter='CollisionKernel*:AliasSampler*:GapTester*'

echo "== dut_net_tests engine + tracing (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_net_tests

echo "== dut_integration_tests trial-parallel determinism (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_integration_tests --gtest_filter='NetTrials*'

# The verdict service fans each epoch's shards over a private worker pool
# (shared-nothing by construction); the determinism gate cases force the
# thread x shard matrix through the contended pool under TSan.
echo "== dut_serve_tests shard fan-out (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_serve_tests

# The network experiments fan trials over the worker pool with one
# designated traced trial each; every transcript and run report must
# validate even when the traced trial lands on a contended worker. E15 runs
# the fault-injection sweeps, so the deferred-delivery slab, crash
# schedule and fault-event tracing all get exercised under contention too.
# E16 runs the multi-process shm transport (forked single-threaded rank
# children over the shared session) and validates the merged transcript.
tsan_trace_dir=$(mktemp -d)
trap 'rm -rf "$tsan_trace_dir"' EXIT
# E17 drives the sharded verdict service's epoch loop (the one engine-free
# bench here: no transcript, but its run report must still validate).
for exp in e7_token_packaging e8_congest e9_local e15_fault_tolerance \
           e16_transport e17_serve; do
  echo "== traced $exp quick run (DUT_THREADS=${DUT_THREADS}, DUT_TRACE on) =="
  exp_dir="$tsan_trace_dir/$exp"
  mkdir -p "$exp_dir"
  (
    cd "$exp_dir"
    DUT_TRACE="$exp_dir/trace.jsonl" \
      "$OLDPWD/build-tsan/bench/$exp" --quick > /dev/null
    if [ -s "$exp_dir/trace.jsonl" ]; then
      "$OLDPWD/build-tsan/tools/dut_trace" check "$exp_dir/trace.jsonl"
    fi
    for report in BENCH_*.json; do
      [ -e "$report" ] || continue
      "$OLDPWD/build-tsan/tools/dut_trace" check-report "$report"
    done
  )
done

# The single-writer census (dut_lint) and TSan must agree: the schedules
# above just ran race-free, so the structural census over the same sources
# must come back clean too. A fresh census finding here means an ownership
# or ordering change landed without its handoff/ordering annotation — fail
# loudly instead of letting the dynamic and static checks drift apart.
echo "== dut_lint concurrency census vs TSan =="
if ! ./build-tsan/tools/dut_lint/dut_lint --root . src/net src/serve src/stats; then
  echo "tsan: dut_lint census disagrees with TSan (fresh findings above):" \
       "a shared-write or ordering change landed without its annotation" >&2
  exit 1
fi

echo "tsan: all engine + observability checks passed"
