#!/usr/bin/env bash
# Race-checks the parallel Monte-Carlo engine and the observability layer:
# builds the stats + core + obs + net test binaries (and one traced
# experiment) under ThreadSanitizer, then runs them with a worker pool
# large enough to exercise every chunk-handoff path even on small CI
# machines. Tracing is exercised concurrently: DUT_TRACE points every
# parallel trial's engine at one transcript file, so the writer's
# process-wide lock and the lock-free metrics registry both get contended.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan -DDUT_BUILD_BENCH=ON
cmake --build --preset tsan -j "$(nproc)" \
  --target dut_stats_tests dut_core_tests dut_obs_tests dut_net_tests \
           e8_congest dut_trace

export DUT_THREADS="${DUT_THREADS:-8}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

echo "== dut_obs_tests (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_obs_tests

echo "== dut_stats_tests (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_stats_tests

echo "== dut_core_tests engine-facing slices (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_core_tests \
  --gtest_filter='CollisionKernel*:AliasSampler*:GapTester*'

echo "== dut_net_tests engine + tracing (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_net_tests

echo "== traced e8 quick run (DUT_THREADS=${DUT_THREADS}, DUT_TRACE on) =="
tsan_trace_dir=$(mktemp -d)
trap 'rm -rf "$tsan_trace_dir"' EXIT
(
  cd "$tsan_trace_dir"
  DUT_TRACE="$tsan_trace_dir/trace.jsonl" \
    "$OLDPWD/build-tsan/bench/e8_congest" --quick > /dev/null
  "$OLDPWD/build-tsan/tools/dut_trace" check "$tsan_trace_dir/trace.jsonl"
)

echo "tsan: all engine + observability checks passed"
