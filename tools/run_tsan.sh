#!/usr/bin/env bash
# Race-checks the parallel Monte-Carlo engine: builds the stats + core test
# binaries under ThreadSanitizer and runs them with a worker pool large
# enough to exercise every chunk-handoff path even on small CI machines.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target dut_stats_tests dut_core_tests

export DUT_THREADS="${DUT_THREADS:-8}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

echo "== dut_stats_tests (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_stats_tests

echo "== dut_core_tests engine-facing slices (DUT_THREADS=${DUT_THREADS}) =="
./build-tsan/tests/dut_core_tests \
  --gtest_filter='CollisionKernel*:AliasSampler*:GapTester*'

echo "tsan: all engine checks passed"
