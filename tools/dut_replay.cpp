// dut_replay — deterministic re-execution of a recorded trace:
//
//   dut_replay <trace.jsonl> [--out <replay.jsonl>] [--keep]
//
// Every traced engine run opens with a run_start preamble whose "replay"
// object records the protocol and its full parameterization (topology spec,
// distribution spec, planner inputs, resilience knobs, fault plan — see
// DESIGN.md §13). This tool rebuilds each run from that metadata alone,
// re-executes it with DUT_TRACE pointed at a fresh file, and byte-diffs the
// regenerated transcript against the original. Exit 0 iff they are
// identical — the repo's end-to-end determinism gate (wired into
// tools/run_smoke.sh and the smoke_replay ctest targets).
//
// The replay file defaults to <trace>.replay and is deleted on success;
// --keep retains it for inspection.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "dut/congest/uniformity.hpp"
#include "dut/core/families.hpp"
#include "dut/core/sampler.hpp"
#include "dut/local/mis.hpp"
#include "dut/local/tester.hpp"
#include "dut/net/fault.hpp"
#include "dut/net/graph.hpp"
#include "dut/obs/trace_reader.hpp"

namespace {

using dut::obs::TraceRun;

using Annotations = std::map<std::string, std::string>;

const std::string& require(const Annotations& ann, const char* key) {
  const auto it = ann.find(key);
  if (it == ann.end()) {
    throw std::runtime_error(std::string("replay metadata missing '") + key +
                             "'");
  }
  return it->second;
}

/// Scoped environment for one replayed run. Reconstruction (planners may
/// spawn their own engine runs, e.g. plan_local's MIS ladder) happens with
/// DUT_TRACE unset so only the final re-execution writes to the replay
/// file; the original trace already holds those planner runs as separate
/// run_start entries, each replayed independently from its own metadata.
class TraceEnv {
 public:
  TraceEnv() { silence(); }
  ~TraceEnv() { silence(); }

  void silence() {
    unsetenv("DUT_TRACE");
    unsetenv("DUT_TRACE_LEVEL");
    unsetenv("DUT_TRACE_TAIL");
  }

  /// Arms DUT_TRACE for the re-execution, restoring the recorded detail
  /// level so level-2 (deliver-event) traces regenerate byte-identically.
  void arm(const std::string& path, int level) {
    setenv("DUT_TRACE", path.c_str(), 1);
    if (level != 1) {
      setenv("DUT_TRACE_LEVEL", std::to_string(level).c_str(), 1);
    }
  }
};

/// Re-executes one recorded run from its replay metadata. The engine
/// appends to `out` when armed. Protocol exceptions (e.g. strict-mode fault
/// violations) propagate — the caller treats them as reproduced if the
/// bytes match, since the original run wrote the same violation prefix.
void replay_run(const TraceRun& run, const std::string& out, TraceEnv& env) {
  Annotations ann;
  for (const auto& [key, value] : run.summary.info.annotations) {
    ann.emplace(key, value);
  }
  const std::string& proto = require(ann, "proto");
  const std::uint64_t seed = run.summary.info.seed;
  const int level = run.summary.info.level;

  const dut::net::Graph graph = dut::net::Graph::from_spec(require(ann, "topo"));
  dut::net::FaultPlan faults;
  const bool has_faults = ann.count("faults") > 0;
  if (has_faults) faults = dut::net::FaultPlan::parse(ann.at("faults"));
  const dut::net::FaultPlan* fault_ptr = has_faults ? &faults : nullptr;

  if (proto == "mis") {
    const std::uint64_t cap = ann.count("cap") > 0
                                  ? std::stoull(ann.at("cap"))
                                  : UINT64_MAX;
    env.arm(out, level);
    (void)dut::local::compute_mis(graph, seed, fault_ptr, cap);
    return;
  }

  if (proto == "token_packaging") {
    dut::congest::CongestResilience opts;
    opts.enabled = ann.count("retx") > 0;
    if (opts.enabled) {
      opts.retransmits = std::stoull(ann.at("retx"));
      opts.quorum_nodes = std::stoull(ann.at("quorum"));
    }
    auto setup = dut::congest::make_packaging_setup(
        graph, std::stoull(require(ann, "tau")), opts, fault_ptr);
    env.arm(out, level);
    (void)dut::congest::run_token_packaging(setup, seed);
    return;
  }

  if (proto == "congest_uniformity") {
    const auto bound = require(ann, "bound") == "chernoff"
                           ? dut::core::TailBound::kChernoff
                           : dut::core::TailBound::kExactBinomial;
    const auto plan = dut::congest::plan_congest(
        std::stoull(require(ann, "n")), graph.num_nodes(),
        std::stod(require(ann, "eps")), std::stod(require(ann, "p")), bound,
        std::stoull(require(ann, "s0")));
    dut::congest::CongestResilience opts;
    opts.enabled = ann.count("retx") > 0;
    if (opts.enabled) {
      opts.retransmits = std::stoull(ann.at("retx"));
      opts.quorum_nodes = std::stoull(ann.at("quorum"));
    }
    auto setup =
        dut::congest::make_congest_setup(plan, graph, opts, fault_ptr);
    const dut::core::AliasSampler sampler(
        dut::core::distribution_from_spec(require(ann, "dist")));
    env.arm(out, level);
    (void)dut::congest::run_congest_uniformity(plan, setup, sampler, seed);
    return;
  }

  if (proto == "local_uniformity") {
    // plan_local reruns the MIS radius ladder from the recorded plan seed;
    // env is silent here, so those planner engines leave no trace lines.
    const auto plan = dut::local::plan_local(
        std::stoull(require(ann, "n")), graph,
        std::stod(require(ann, "eps")), std::stod(require(ann, "p")),
        std::stoull(require(ann, "s0")),
        std::stoull(require(ann, "plan_seed")),
        static_cast<std::uint32_t>(std::stoul(require(ann, "max_r"))));
    auto driver = dut::local::make_local_driver(plan, graph, fault_ptr);
    const dut::core::AliasSampler sampler(
        dut::core::distribution_from_spec(require(ann, "dist")));
    env.arm(out, level);
    (void)dut::local::run_local_uniformity(plan, driver, sampler, seed);
    return;
  }

  throw std::runtime_error("unknown replay protocol '" + proto + "'");
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

int usage() {
  std::fprintf(stderr,
               "usage: dut_replay <trace.jsonl> [--out <replay.jsonl>] "
               "[--keep]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string input = argv[1];
  std::string out = input + ".replay";
  bool keep = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      keep = true;
    } else {
      return usage();
    }
  }

  std::vector<TraceRun> runs;
  try {
    runs = dut::obs::read_trace_runs(input);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dut_replay: %s\n", e.what());
    return 1;
  }
  if (runs.empty()) {
    std::fprintf(stderr, "dut_replay: %s holds no runs\n", input.c_str());
    return 1;
  }

  std::remove(out.c_str());
  TraceEnv env;
  int failures = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TraceRun& run = runs[i];
    if (run.summary.truncated_tail || run.summary.declared_tail > 0) {
      std::fprintf(stderr,
                   "dut_replay: run %zu is a tail-mode capture — ring "
                   "eviction loses the replay preamble's ordering, byte "
                   "replay is impossible\n",
                   i);
      ++failures;
      continue;
    }
    if (run.summary.info.annotations.empty()) {
      std::fprintf(stderr,
                   "dut_replay: run %zu (model=%s seed=%llu) carries no "
                   "replay metadata — unreplayable\n",
                   i, run.summary.info.model.c_str(),
                   static_cast<unsigned long long>(run.summary.info.seed));
      ++failures;
      continue;
    }
    env.silence();
    try {
      replay_run(run, out, env);
    } catch (const std::exception& e) {
      // A run that died mid-protocol (strict fault mode) throws on replay
      // too; its partial transcript is already on disk and the byte diff
      // below is the arbiter. Report but keep going.
      std::fprintf(stderr, "dut_replay: run %zu raised during replay: %s\n",
                   i, e.what());
    }
    env.silence();
  }

  // Byte-level diff: the replayed runs were appended in file order, so the
  // whole regenerated file must equal the original line for line.
  try {
    const std::vector<std::string> original = read_lines(input);
    const std::vector<std::string> replayed = read_lines(out);
    const std::size_t common = std::min(original.size(), replayed.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (original[i] != replayed[i]) {
        std::fprintf(stderr,
                     "dut_replay: divergence at line %zu\n  original: %s\n"
                     "  replayed: %s\n",
                     i + 1, original[i].c_str(), replayed[i].c_str());
        ++failures;
        break;
      }
    }
    if (original.size() != replayed.size()) {
      std::fprintf(stderr,
                   "dut_replay: original has %zu line(s), replay has %zu\n",
                   original.size(), replayed.size());
      ++failures;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dut_replay: %s\n", e.what());
    ++failures;
  }

  if (failures == 0) {
    std::printf("%s: %zu run(s) replayed byte-identically\n", input.c_str(),
                runs.size());
    if (!keep) std::remove(out.c_str());
    return 0;
  }
  std::fprintf(stderr, "dut_replay: %d failure(s); replay kept at %s\n",
               failures, out.c_str());
  return 1;
}
