// dut_audit — causal and budget auditing over DUT_TRACE transcripts:
//
//   dut_audit summary <trace.jsonl> [--report <report.json>]
//       per-run audit header: schema level, budget spec, replay metadata,
//       event census (including unknown kinds). With --report, also prints
//       the phase profiler's log2 histograms (phase.*.us) from the report.
//
//   dut_audit lineage <trace.jsonl> [--run N]
//       rebuilds the send→deliver happens-before DAG and walks the causal
//       cone backwards from the run's last halt (the protocol's final
//       decision point): which nodes' sends could have influenced it, per
//       round. Defaults to the last complete run.
//
//   dut_audit budget <trace.jsonl> [--report <report.json>] [--run N]
//       recomputes the communication-budget ledger offline from the send
//       events — per-edge-per-round bits, per-node bits, message and round
//       counts — and cross-checks the result against the run_start budget
//       preamble (and, with --report, against the BENCH_*.json budget
//       section). Exit 0 iff every audited run is within budget.
//
//   dut_audit critical-path <trace.jsonl> [--run N]
//       longest causal chain of sends (each link: a message delivered in
//       the round its successor was sent), the trace-level analogue of the
//       round-complexity lower bound — the chain length can never exceed
//       the round count.
//
// Traces come from DUT_TRACE=<path> (DESIGN.md §9); the budget ledger and
// replay preamble are described in DESIGN.md §13.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dut/obs/json.hpp"
#include "dut/obs/trace_reader.hpp"

namespace {

using dut::obs::Json;
using dut::obs::TraceEvent;
using dut::obs::TraceRun;

using U64 = unsigned long long;

struct Options {
  std::string trace_path;
  std::string report_path;  // empty = no report cross-check
  std::size_t run_index = SIZE_MAX;  // SIZE_MAX = default per command
};

/// Loads and parses --report; returns a null Json (is_null) on failure
/// after printing the reason.
Json load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dut_audit: cannot read %s\n", path.c_str());
    return Json();
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return Json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dut_audit: %s: JSON parse error: %s\n",
                 path.c_str(), e.what());
    return Json();
  }
}

const char* kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kRunStart: return "run_start";
    case TraceEvent::Kind::kRound: return "round";
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kDeliver: return "deliver";
    case TraceEvent::Kind::kHalt: return "halt";
    case TraceEvent::Kind::kFault: return "fault";
    case TraceEvent::Kind::kViolation: return "violation";
    case TraceEvent::Kind::kRunEnd: return "run_end";
    case TraceEvent::Kind::kUnknown: return "unknown";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// summary
// ---------------------------------------------------------------------------

int cmd_summary(const Options& opts) {
  const auto runs = dut::obs::read_trace_runs(opts.trace_path);
  std::printf("%s: %zu run(s)\n", opts.trace_path.c_str(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TraceRun& run = runs[i];
    const auto& s = run.summary;
    std::printf("run %zu: model=%s nodes=%u seed=%llu level=%d%s%s\n", i,
                s.info.model.c_str(), s.info.nodes,
                static_cast<U64>(s.info.seed), s.info.level,
                s.declared_tail > 0 ? " tail-mode" : "",
                s.truncated_tail ? " (tail-truncated)" : "");
    if (s.info.budget.bounded()) {
      std::printf("  budget: %llu bits/edge/round, %llu round cap",
                  static_cast<U64>(s.info.budget.bits_per_edge_round),
                  static_cast<U64>(s.info.budget.max_rounds));
      if (s.info.budget.max_messages != dut::obs::BudgetSpec::kUnlimited) {
        std::printf(", %llu message cap",
                    static_cast<U64>(s.info.budget.max_messages));
      }
      std::printf("\n");
    }
    if (!s.info.annotations.empty()) {
      std::printf("  replay:");
      for (const auto& [key, value] : s.info.annotations) {
        std::printf(" %s=%s", key.c_str(), value.c_str());
      }
      std::printf("\n");
    }
    std::map<std::string, std::uint64_t> census;
    for (const TraceEvent& event : run.events) ++census[kind_name(event.kind)];
    std::printf("  events:");
    for (const auto& [name, count] : census) {
      std::printf(" %s=%llu", name.c_str(), static_cast<U64>(count));
    }
    std::printf("\n");
    if (s.unknown_events > 0) {
      std::printf("  unknown events: %llu (schema drift? writer newer than "
                  "this reader)\n",
                  static_cast<U64>(s.unknown_events));
    }
  }

  if (!opts.report_path.empty()) {
    const Json report = load_report(opts.report_path);
    if (report.is_null()) return 1;
    const Json* metrics = report.get("metrics");
    const Json* histograms =
        metrics != nullptr ? metrics->get("histograms") : nullptr;
    std::printf("phase profile (%s):\n", opts.report_path.c_str());
    bool any = false;
    if (histograms != nullptr && histograms->is_object()) {
      for (const auto& [name, data] : histograms->items()) {
        if (name.rfind("phase.", 0) != 0) continue;
        any = true;
        const Json* count = data.get("count");
        const Json* mean = data.get("mean");
        const Json* max = data.get("max");
        std::printf("  %-24s count=%llu mean=%.1fus max=%lluus\n",
                    name.c_str(),
                    count != nullptr ? static_cast<U64>(count->as_u64()) : 0,
                    mean != nullptr ? mean->as_double() : 0.0,
                    max != nullptr ? static_cast<U64>(max->as_u64()) : 0);
      }
    }
    if (!any) std::printf("  (no phase.* histograms in the report)\n");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// lineage
// ---------------------------------------------------------------------------

/// Picks the run to audit: --run N, else the last complete run, else the
/// last run. Returns SIZE_MAX and prints why when nothing qualifies.
std::size_t pick_run(const std::vector<TraceRun>& runs, const Options& opts) {
  if (runs.empty()) {
    std::fprintf(stderr, "dut_audit: %s holds no runs\n",
                 opts.trace_path.c_str());
    return SIZE_MAX;
  }
  if (opts.run_index != SIZE_MAX) {
    if (opts.run_index >= runs.size()) {
      std::fprintf(stderr, "dut_audit: --run %zu out of range (%zu runs)\n",
                   opts.run_index, runs.size());
      return SIZE_MAX;
    }
    return opts.run_index;
  }
  for (std::size_t i = runs.size(); i > 0; --i) {
    if (runs[i - 1].summary.has_end) return i - 1;
  }
  return runs.size() - 1;
}

int cmd_lineage(const Options& opts) {
  const auto runs = dut::obs::read_trace_runs(opts.trace_path);
  const std::size_t index = pick_run(runs, opts);
  if (index == SIZE_MAX) return 1;
  const TraceRun& run = runs[index];

  // The audit target: the last halt in the run — for a completed protocol
  // that is the final decision point (in these protocols, the root's
  // verdict broadcast ends with the last nodes halting).
  const TraceEvent* target = nullptr;
  for (const TraceEvent& event : run.events) {
    if (event.kind == TraceEvent::Kind::kHalt) target = &event;
  }
  if (target == nullptr) {
    std::fprintf(stderr, "dut_audit: run %zu has no halt events\n", index);
    return 1;
  }

  // Backward causal cone over the happens-before DAG. interest[v] = the
  // latest round at which v's state can still influence the target; a send
  // u->v at round r (delivered at r+1) is causal iff r+1 <= interest[v],
  // and then u's state at r matters: interest[u] >= r. One pass over the
  // sends in descending round order suffices because interest values only
  // propagate to strictly earlier rounds.
  std::vector<const TraceEvent*> sends;
  for (const TraceEvent& event : run.events) {
    if (event.kind == TraceEvent::Kind::kSend) sends.push_back(&event);
  }
  std::stable_sort(sends.begin(), sends.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->round > b->round;
                   });
  std::map<std::uint32_t, std::uint64_t> interest;
  interest[target->from] = target->round;
  std::uint64_t causal_sends = 0;
  std::map<std::uint64_t, std::uint64_t> cone_growth;  // round -> new sends
  for (const TraceEvent* send : sends) {
    const auto it = interest.find(send->to);
    if (it == interest.end() || send->round + 1 > it->second) continue;
    ++causal_sends;
    ++cone_growth[send->round];
    auto [u_it, inserted] = interest.emplace(send->from, send->round);
    if (!inserted && u_it->second < send->round) u_it->second = send->round;
  }

  std::printf("run %zu: lineage of halt(node %u, round %llu)\n", index,
              target->from, static_cast<U64>(target->round));
  std::printf("  causal cone: %zu of %u nodes, %llu of %llu sends\n",
              interest.size(), run.summary.info.nodes,
              static_cast<U64>(causal_sends),
              static_cast<U64>(run.summary.messages));
  for (const auto& [round, count] : cone_growth) {
    std::printf("  round %llu: %llu causal send(s)\n",
                static_cast<U64>(round), static_cast<U64>(count));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// budget
// ---------------------------------------------------------------------------

struct RecomputedBudget {
  std::uint64_t messages = 0;
  std::uint64_t max_edge_round_bits = 0;
  std::uint64_t max_node_bits = 0;
  std::uint64_t rounds = 0;
  std::uint64_t duplicate_edge_sends = 0;  ///< >1 send on an edge in a round
};

RecomputedBudget recompute_budget(const TraceRun& run) {
  RecomputedBudget out;
  // The engine's directed-edge guard admits one send per directed edge per
  // round, so per-edge-per-round bits should equal single-message bits; a
  // duplicate key here means the transcript itself breaks that invariant.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> edge_bits;
  std::map<std::uint32_t, std::uint64_t> node_bits;
  for (const TraceEvent& event : run.events) {
    if (event.kind == TraceEvent::Kind::kRound) {
      out.rounds = std::max(out.rounds, event.round);
    }
    if (event.kind != TraceEvent::Kind::kSend) continue;
    ++out.messages;
    const std::uint64_t edge =
        (static_cast<std::uint64_t>(event.from) << 32) | event.to;
    std::uint64_t& slot = edge_bits[{event.round, edge}];
    if (slot != 0) ++out.duplicate_edge_sends;
    slot += event.bits;
    out.max_edge_round_bits = std::max(out.max_edge_round_bits, slot);
    node_bits[event.from] += event.bits;
  }
  for (const auto& [node, bits] : node_bits) {
    out.max_node_bits = std::max(out.max_node_bits, bits);
  }
  return out;
}

int cmd_budget(const Options& opts) {
  const auto runs = dut::obs::read_trace_runs(opts.trace_path);
  if (runs.empty()) {
    std::fprintf(stderr, "dut_audit: %s holds no runs\n",
                 opts.trace_path.c_str());
    return 1;
  }
  int failures = 0;
  std::uint64_t congest_bits_max = 0;
  std::uint64_t congest_rounds_max = 0;
  std::uint64_t local_rounds_max = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (opts.run_index != SIZE_MAX && opts.run_index != i) continue;
    const TraceRun& run = runs[i];
    if (run.summary.truncated_tail) {
      std::printf("run %zu: tail-truncated, budget recount skipped\n", i);
      continue;
    }
    const RecomputedBudget usage = recompute_budget(run);
    const dut::obs::BudgetSpec& spec = run.summary.info.budget;
    std::printf("run %zu (%s): %llu msgs, %llu rounds, max %llu "
                "bits/edge/round, max %llu bits/node\n",
                i, run.summary.info.model.c_str(),
                static_cast<U64>(usage.messages),
                static_cast<U64>(usage.rounds),
                static_cast<U64>(usage.max_edge_round_bits),
                static_cast<U64>(usage.max_node_bits));
    if (run.summary.info.model == "congest") {
      congest_bits_max =
          std::max(congest_bits_max, usage.max_edge_round_bits);
      congest_rounds_max = std::max(congest_rounds_max, usage.rounds);
    } else {
      local_rounds_max = std::max(local_rounds_max, usage.rounds);
    }
    if (usage.duplicate_edge_sends > 0) {
      std::fprintf(stderr,
                   "run %zu: %llu duplicate (round, edge) send(s) — the "
                   "directed-edge guard was bypassed\n",
                   i, static_cast<U64>(usage.duplicate_edge_sends));
      ++failures;
    }
    if (!spec.bounded()) {
      std::printf("  no budget preamble (pre-ledger trace); recount only\n");
      continue;
    }
    if (spec.bits_per_edge_round > 0 &&
        usage.max_edge_round_bits > spec.bits_per_edge_round) {
      std::fprintf(stderr,
                   "run %zu: %llu bits/edge/round exceeds the declared %llu\n",
                   i, static_cast<U64>(usage.max_edge_round_bits),
                   static_cast<U64>(spec.bits_per_edge_round));
      ++failures;
    }
    if (spec.max_rounds > 0 && usage.rounds > spec.max_rounds) {
      std::fprintf(stderr, "run %zu: %llu rounds exceeds the declared %llu\n",
                   i, static_cast<U64>(usage.rounds),
                   static_cast<U64>(spec.max_rounds));
      ++failures;
    }
    if (usage.messages > spec.max_messages) {
      std::fprintf(stderr,
                   "run %zu: %llu messages exceeds the declared cap %llu\n",
                   i, static_cast<U64>(usage.messages),
                   static_cast<U64>(spec.max_messages));
      ++failures;
    }
    if (run.summary.has_end &&
        usage.messages != run.summary.declared.messages) {
      std::fprintf(stderr,
                   "run %zu: recounted %llu messages != declared %llu\n", i,
                   static_cast<U64>(usage.messages),
                   static_cast<U64>(run.summary.declared.messages));
      ++failures;
    }
  }

  if (!opts.report_path.empty()) {
    // Cross-check: the report aggregates every trial; the trace holds the
    // designated trial(s). The traced maxima can never exceed the report's.
    const Json report = load_report(opts.report_path);
    if (report.is_null()) return 1;
    const Json* budget = report.get("budget");
    if (budget == nullptr || !budget->is_object()) {
      std::fprintf(stderr, "dut_audit: %s has no budget section\n",
                   opts.report_path.c_str());
      return 1;
    }
    const auto check_max = [&](const char* section, const char* key,
                               std::uint64_t traced) {
      const Json* sec = budget->get(section);
      if (sec == nullptr) {
        if (traced > 0) {
          std::fprintf(stderr,
                       "report cross-check: trace has %s runs but the report "
                       "budget has no %s section\n",
                       section, section);
          ++failures;
        }
        return;
      }
      const Json* value = sec->get(key);
      if (value == nullptr || !value->is_number()) return;
      if (traced > value->as_u64()) {
        std::fprintf(stderr,
                     "report cross-check: traced %s.%s %llu exceeds the "
                     "report's %llu\n",
                     section, key, static_cast<U64>(traced),
                     static_cast<U64>(value->as_u64()));
        ++failures;
      }
    };
    check_max("congest", "bits_per_edge_round_max", congest_bits_max);
    check_max("congest", "rounds_max", congest_rounds_max);
    check_max("local", "rounds_max", local_rounds_max);
    const Json* violations = budget->get("violations");
    if (violations != nullptr && violations->is_number() &&
        violations->as_u64() != 0) {
      std::fprintf(stderr, "report cross-check: budget.violations = %llu\n",
                   static_cast<U64>(violations->as_u64()));
      ++failures;
    }
    if (failures == 0) {
      std::printf("report cross-check: traced maxima within %s budget\n",
                  opts.report_path.c_str());
    }
  }

  if (failures == 0) std::printf("budget audit: all runs within budget\n");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// critical-path
// ---------------------------------------------------------------------------

int cmd_critical_path(const Options& opts) {
  const auto runs = dut::obs::read_trace_runs(opts.trace_path);
  const std::size_t index = pick_run(runs, opts);
  if (index == SIZE_MAX) return 1;
  const TraceRun& run = runs[index];

  // depth[v] = longest chain of causally-ordered sends whose last message
  // was delivered to v. A round-r send from u extends u's chain; it reaches
  // its target at r+1, so same-round sends must all read the pre-round
  // depths — stage candidates per round and apply them at the boundary.
  std::vector<const TraceEvent*> sends;
  for (const TraceEvent& event : run.events) {
    if (event.kind == TraceEvent::Kind::kSend) sends.push_back(&event);
  }
  std::stable_sort(sends.begin(), sends.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->round < b->round;
                   });
  std::map<std::uint32_t, std::uint64_t> depth;
  std::map<std::uint32_t, std::uint64_t> staged;
  std::uint64_t current_round = 0;
  std::uint64_t longest = 0;
  const auto flush_round = [&] {
    for (const auto& [node, d] : staged) {
      auto [it, inserted] = depth.emplace(node, d);
      if (!inserted && it->second < d) it->second = d;
      longest = std::max(longest, d);
    }
    staged.clear();
  };
  for (const TraceEvent* send : sends) {
    if (send->round != current_round) {
      flush_round();
      current_round = send->round;
    }
    const auto it = depth.find(send->from);
    const std::uint64_t chain = (it == depth.end() ? 0 : it->second) + 1;
    auto [s_it, inserted] = staged.emplace(send->to, chain);
    if (!inserted && s_it->second < chain) s_it->second = chain;
  }
  flush_round();

  const std::uint64_t rounds = run.summary.has_end
                                   ? run.summary.declared.rounds
                                   : run.summary.rounds_seen;
  std::printf("run %zu: critical path %llu send(s) over %llu round(s)\n",
              index, static_cast<U64>(longest), static_cast<U64>(rounds));
  if (longest > rounds) {
    std::fprintf(stderr,
                 "dut_audit: critical path exceeds the round count — the "
                 "transcript is not causally consistent\n");
    return 1;
  }
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: dut_audit summary <trace.jsonl> [--report <report.json>]\n"
      "       dut_audit lineage <trace.jsonl> [--run N]\n"
      "       dut_audit budget <trace.jsonl> [--report <report.json>] "
      "[--run N]\n"
      "       dut_audit critical-path <trace.jsonl> [--run N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  Options opts;
  opts.trace_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      opts.report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--run") == 0 && i + 1 < argc) {
      opts.run_index = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else {
      return usage();
    }
  }
  try {
    if (std::strcmp(argv[1], "summary") == 0) return cmd_summary(opts);
    if (std::strcmp(argv[1], "lineage") == 0) return cmd_lineage(opts);
    if (std::strcmp(argv[1], "budget") == 0) return cmd_budget(opts);
    if (std::strcmp(argv[1], "critical-path") == 0) {
      return cmd_critical_path(opts);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dut_audit: %s\n", e.what());
    return 1;
  }
  return usage();
}
