// dut_cli — command-line front end for the planners and testers.
//
//   dut_cli plan-threshold --n 65536 --k 8192 --eps 0.9 [--p 0.25]
//                          [--chernoff]
//   dut_cli plan-and       --n 131072 --k 16384 --eps 1.2 [--p 0.33]
//   dut_cli plan-congest   --n 4096 --k 4096 --eps 1.2 [--samples 4]
//   dut_cli run-threshold  --n 65536 --k 8192 --eps 0.9 --family paninski
//                          [--trials 100] [--seed 1]
//   dut_cli run-congest    --n 4096 --k 4096 --eps 1.2 --family paninski
//                          [--topology random] [--trials 20] [--seed 1]
//                          [--faults drop=0.05,dup=0.01,crash=3@0+17@12]
//                          [--quorum Q] [--retransmits R] [--workers W]
//   dut_cli serve          --streams 1048576 --shards 8 --zipf 0.99
//                          --duration-epochs 12 [--n 4096] [--eps 1.6]
//                          [--p 0.33] [--far-every 16] [--batch B]
//                          [--threads W] [--seed S]
//   dut_cli families       --n 4096
//
// Families for run-threshold / run-congest: uniform, paninski, heavy (20%
// hitter), zipf (exponent 1), support (half support removed).
//
// serve runs the sharded streaming verdict service (DESIGN.md §15) for a
// fixed number of epochs and prints per-epoch decisions, sequential sample
// savings against the fixed m*s budget, epochs-to-verdict latency
// percentiles, and an FNV digest of the full verdict stream. Everything
// except the `timing:`-prefixed wall-clock lines is a pure function of the
// flags — tools/run_smoke.sh --serve diffs the output across thread and
// shard counts. Serve flags are parsed strictly (obs::parse_u64 semantics):
// a malformed value is a usage error, never a silent default.
//
// --faults takes a net::FaultPlan spec (drop= dup= corrupt= delay=P[:MAX]
// crash=NODE@ROUND[+...] seed=S) and switches run-congest to the resilient
// protocol with timeout-and-quorum decisions.
//
// --workers W runs the sweep sharded over W rank processes: the coordinator
// creates a named shm session, re-execs itself W-1 times with the internal
// `--worker <rank> --shm <name>` prefix (workers re-parse the identical
// run-congest flags, open the session and serve trials), and merges
// verdicts that are bit-identical to the single-process run at the same
// seeds (the transport_congest_gate ctest target holds this equality).

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dut/dut.hpp"
#include "dut/obs/phase_timer.hpp"

namespace {

using namespace dut;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: dut_cli <command> [--flag value ...]\n"
               "commands:\n"
               "  plan-threshold --n N --k K --eps E [--p P] [--chernoff]\n"
               "  plan-and       --n N --k K --eps E [--p P]\n"
               "  plan-congest   --n N --k K --eps E [--p P] [--samples S]\n"
               "  run-threshold  --n N --k K --eps E [--family F]\n"
               "                 [--trials T] [--seed S]\n"
               "  run-congest    --n N --k K --eps E [--family F]\n"
               "                 [--topology random|ring|star|line|grid]\n"
               "                 [--trials T] [--seed S] [--faults SPEC]\n"
               "                 [--quorum Q] [--retransmits R] [--workers W]\n"
               "  serve          [--streams S] [--shards H] [--zipf THETA]\n"
               "                 [--duration-epochs E] [--n N] [--eps E]\n"
               "                 [--p P] [--far-every F] [--batch B]\n"
               "                 [--threads W] [--seed S] [--chernoff]\n"
               "  families       --n N\n");
  std::exit(2);
}

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string flag = argv[i];
      if (flag.rfind("--", 0) != 0) usage("flags must start with --");
      flag = flag.substr(2);
      // Boolean flags take no value; detect by lookahead.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[flag] = argv[++i];
      } else {
        values_[flag] = "1";
      }
    }
  }

  std::uint64_t integer(const std::string& flag, std::uint64_t fallback,
                        bool required = false) const {
    const auto it = values_.find(flag);
    if (it == values_.end()) {
      if (required) usage(("missing required --" + flag).c_str());
      return fallback;
    }
    return std::strtoull(it->second.c_str(), nullptr, 10);
  }

  double real(const std::string& flag, double fallback,
              bool required = false) const {
    const auto it = values_.find(flag);
    if (it == values_.end()) {
      if (required) usage(("missing required --" + flag).c_str());
      return fallback;
    }
    return std::strtod(it->second.c_str(), nullptr);
  }

  std::string text(const std::string& flag, const std::string& fallback) const {
    const auto it = values_.find(flag);
    return it == values_.end() ? fallback : it->second;
  }

  bool flag(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

void print(const stats::TextTable& table) {
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
}

core::Distribution make_family(const std::string& name, std::uint64_t n,
                               double eps) {
  if (name == "uniform") return core::uniform(n);
  if (name == "paninski") return core::far_instance(n, eps);
  if (name == "heavy") return core::heavy_hitter(n, 0.2);
  if (name == "zipf") return core::zipf(n, 1.0);
  if (name == "support") return core::restricted_support(n, n / 2);
  usage(("unknown family '" + name + "'").c_str());
}

int plan_threshold_cmd(const Args& args) {
  const std::uint64_t n = args.integer("n", 0, true);
  const std::uint64_t k = args.integer("k", 0, true);
  const double eps = args.real("eps", 0.0, true);
  const double p = args.real("p", 1.0 / 3.0);
  const auto bound = args.flag("chernoff") ? core::TailBound::kChernoff
                                           : core::TailBound::kExactBinomial;
  const auto plan = core::plan_threshold(n, k, eps, p, bound);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  stats::TextTable table({"quantity", "value"});
  table.row().add("samples per node").add(plan.base.s);
  table.row().add("reject threshold T").add(plan.threshold);
  table.row().add("per-node delta").add(plan.base.delta, 4);
  table.row().add("gap alpha").add(plan.base.alpha, 4);
  table.row().add("E[rejects | uniform]").add(plan.eta_uniform, 4);
  table.row().add("E[rejects | far] (min)").add(plan.eta_far, 4);
  table.row().add("P[false reject] bound").add(plan.bound_false_reject, 4);
  table.row().add("P[false accept] bound").add(plan.bound_false_accept, 4);
  print(table);
  return 0;
}

int plan_and_cmd(const Args& args) {
  const std::uint64_t n = args.integer("n", 0, true);
  const std::uint64_t k = args.integer("k", 0, true);
  const double eps = args.real("eps", 0.0, true);
  const double p = args.real("p", 1.0 / 3.0);
  const auto plan = core::plan_and_rule(n, k, eps, p);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  stats::TextTable table({"quantity", "value"});
  table.row().add("repetitions m").add(plan.repetitions);
  table.row().add("samples per run").add(plan.base.s);
  table.row().add("samples per node").add(plan.samples_per_node);
  table.row().add("guaranteed completeness").add(plan.guaranteed_completeness,
                                                 4);
  table.row().add("guaranteed soundness").add(plan.guaranteed_soundness, 4);
  print(table);
  return 0;
}

int plan_congest_cmd(const Args& args) {
  const std::uint64_t n = args.integer("n", 0, true);
  const auto k = static_cast<std::uint32_t>(args.integer("k", 0, true));
  const double eps = args.real("eps", 0.0, true);
  const double p = args.real("p", 1.0 / 3.0);
  const std::uint64_t samples = args.integer("samples", 1);
  const auto plan = congest::plan_congest(
      n, k, eps, p, core::TailBound::kExactBinomial, samples);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  stats::TextTable table({"quantity", "value"});
  table.row().add("package size tau").add(plan.tau);
  table.row().add("virtual nodes (packages)").add(plan.num_packages);
  table.row().add("reject threshold T").add(plan.threshold);
  table.row().add("message budget (bits)").add(plan.bandwidth_bits);
  table.row().add("round complexity").add("O(D + " +
                                          std::to_string(plan.tau) + ")");
  print(table);
  return 0;
}

int run_threshold_cmd(const Args& args) {
  const std::uint64_t n = args.integer("n", 0, true);
  const std::uint64_t k = args.integer("k", 0, true);
  const double eps = args.real("eps", 0.0, true);
  const double p = args.real("p", 1.0 / 3.0);
  const std::uint64_t trials = args.integer("trials", 100);
  const std::uint64_t seed = args.integer("seed", 1);
  const std::string family = args.text("family", "uniform");

  const auto plan = core::plan_threshold(n, k, eps, p,
                                         core::TailBound::kExactBinomial);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  const core::Distribution mu = make_family(family, n, eps);
  const core::AliasSampler sampler(mu);
  const auto reject = stats::estimate_probability(
      seed, trials, [&](stats::Xoshiro256& rng) {
        return core::run_threshold_network(plan, sampler, rng).rejects();
      });
  std::printf("family=%s  L1(mu,U)=%.3f  chi*n=%.3f\n", family.c_str(),
              mu.l1_to_uniform(),
              mu.collision_probability() * static_cast<double>(n));
  std::printf("network rejected %llu / %llu runs (rate %.3f, 99.99%% CI "
              "[%.3f, %.3f])\n",
              static_cast<unsigned long long>(reject.successes),
              static_cast<unsigned long long>(reject.trials), reject.p_hat,
              reject.lo, reject.hi);
  return 0;
}

net::Graph make_topology(const std::string& name, std::uint32_t k) {
  if (name == "random") return net::Graph::random_connected(k, 2.0, 11);
  if (name == "ring") return net::Graph::ring(k);
  if (name == "star") return net::Graph::star(k);
  if (name == "line") return net::Graph::line(k);
  if (name == "grid") {
    std::uint32_t rows = 1;
    while ((rows + 1) * (rows + 1) <= k) ++rows;
    if (rows * rows != k) usage("--topology grid needs a square node count");
    return net::Graph::grid(rows, rows);
  }
  usage(("unknown topology '" + name + "'").c_str());
}

// Everything a run-congest invocation resolves from its flags alone. The
// sharded path re-execs the binary per worker rank with the same flags, so
// this resolution must be a pure function of the arguments — coordinator
// and workers each build it independently and must agree bit for bit.
struct CongestRun {
  congest::CongestPlan plan;
  net::Graph graph;
  core::Distribution mu;
  std::string family;
  std::uint64_t trials;
  std::uint64_t seed;
  bool resilient;
  std::optional<net::FaultPlan> faults;
  congest::CongestResilience resilience;
};

CongestRun make_congest_run(const Args& args) {
  const std::uint64_t n = args.integer("n", 0, true);
  const auto k = static_cast<std::uint32_t>(args.integer("k", 0, true));
  const double eps = args.real("eps", 0.0, true);
  const double p = args.real("p", 1.0 / 3.0);
  const std::string fault_spec = args.text("faults", "");

  CongestRun run{congest::plan_congest(n, k, eps, p),
                 make_topology(args.text("topology", "random"), k),
                 make_family(args.text("family", "uniform"), n, eps),
                 args.text("family", "uniform"),
                 args.integer("trials", 20),
                 args.integer("seed", 1),
                 false,
                 std::nullopt,
                 congest::CongestResilience{}};
  run.resilient = !fault_spec.empty() || args.flag("quorum") ||
                  args.flag("retransmits");
  if (run.resilient) {
    run.faults = net::FaultPlan::parse(fault_spec);
    run.resilience.enabled = true;
    run.resilience.retransmits = args.integer("retransmits", 2);
    run.resilience.quorum_nodes = args.integer("quorum", 0);
  }
  return run;
}

congest::ShardedCongestOptions make_sharded_options(const CongestRun& run,
                                                    std::uint32_t workers) {
  congest::ShardedCongestOptions options;
  options.num_ranks = workers;
  options.seeds.resize(run.trials);
  for (std::uint64_t t = 0; t < run.trials; ++t) {
    options.seeds[t] = run.seed + t;
  }
  options.resilience = run.resilience;
  options.faults = run.faults.has_value() ? &*run.faults : nullptr;
  return options;
}

void print_congest_summary(const CongestRun& run,
                           const std::vector<congest::CongestRunResult>& rs) {
  std::uint64_t rejects = 0;
  std::uint64_t quorum_misses = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t rounds = 0;
  for (const congest::CongestRunResult& r : rs) {
    rejects += r.verdict.rejects();
    quorum_misses += !r.quorum_met;
    faults_injected += r.metrics.faults.total();
    rounds = r.metrics.rounds;
  }
  std::printf("family=%s  L1(mu,U)=%.3f  protocol=%s\n", run.family.c_str(),
              run.mu.l1_to_uniform(), run.resilient ? "resilient" : "plain");
  std::printf("network rejected %llu / %llu runs  (last run: %llu rounds)\n",
              static_cast<unsigned long long>(rejects),
              static_cast<unsigned long long>(rs.size()),
              static_cast<unsigned long long>(rounds));
  if (run.resilient) {
    std::printf("quorum missed in %llu runs; %llu faults injected in total\n",
                static_cast<unsigned long long>(quorum_misses),
                static_cast<unsigned long long>(faults_injected));
  }
}

int run_congest_sharded(const Args& args, const char* exe,
                        const std::vector<std::string>& raw_args) {
  const auto workers =
      static_cast<std::uint32_t>(args.integer("workers", 0, true));
  const CongestRun run = make_congest_run(args);
  if (!run.plan.feasible) {
    std::printf("infeasible: %s\n", run.plan.infeasible_reason.c_str());
    return 1;
  }
  const congest::ShardedCongestOptions options =
      make_sharded_options(run, workers);
  const core::AliasSampler sampler(run.mu);

  const std::string shm_name = "/dut_cli_" + std::to_string(::getpid());
  net::ShmSession session = net::ShmSession::create_named(
      shm_name, net::ShmSession::Options{.num_ranks = workers});
  // Workers re-exec this binary with the identical run-congest arguments;
  // the injected --worker/--shm prefix routes them into serve mode.
  const std::vector<pid_t> pids =
      net::spawn_worker_processes(exe, shm_name, workers, raw_args);

  std::vector<congest::CongestRunResult> results;
  try {
    results = congest::coordinate_congest_uniformity(session, run.plan,
                                                     run.graph, sampler,
                                                     options);
  } catch (...) {
    session.end_session();
    (void)net::wait_worker_processes(pids);
    throw;
  }
  session.end_session();
  if (!net::wait_worker_processes(pids)) {
    std::fprintf(stderr, "error: a worker process exited uncleanly\n");
    return 1;
  }
  std::printf("sharded over %u rank processes (shm session %s)\n", workers,
              shm_name.c_str());
  print_congest_summary(run, results);
  return 0;
}

int run_congest_worker(std::uint32_t rank, const std::string& shm_name,
                       const Args& args) {
  const CongestRun run = make_congest_run(args);
  if (!run.plan.feasible) return 1;
  const congest::ShardedCongestOptions options = make_sharded_options(
      run, 0);  // num_ranks/seeds unused by the serve loop
  const core::AliasSampler sampler(run.mu);
  net::ShmSession session = net::ShmSession::open_named(shm_name);
  congest::serve_congest_uniformity(session, rank, run.plan, run.graph,
                                    sampler, options);
  return 0;
}

int run_congest_cmd(const Args& args, const char* exe,
                    const std::vector<std::string>& raw_args) {
  if (args.integer("workers", 0) > 1) {
    return run_congest_sharded(args, exe, raw_args);
  }
  const CongestRun run = make_congest_run(args);
  if (!run.plan.feasible) {
    std::printf("infeasible: %s\n", run.plan.infeasible_reason.c_str());
    return 1;
  }
  const core::AliasSampler sampler(run.mu);

  std::vector<congest::CongestRunResult> results;
  results.reserve(run.trials);
  if (run.resilient) {
    congest::CongestSetup setup = congest::make_congest_setup(
        run.plan, run.graph, run.resilience, &*run.faults);
    for (std::uint64_t t = 0; t < run.trials; ++t) {
      results.push_back(congest::run_congest_uniformity(run.plan, setup,
                                                        sampler,
                                                        run.seed + t));
    }
  } else {
    net::ProtocolDriver driver =
        congest::make_congest_driver(run.plan, run.graph);
    for (std::uint64_t t = 0; t < run.trials; ++t) {
      results.push_back(congest::run_congest_uniformity(run.plan, driver,
                                                        sampler,
                                                        run.seed + t));
    }
  }
  print_congest_summary(run, results);
  return 0;
}

// Strict flag parsing for the serve subcommand: the whole value must be a
// decimal integer (obs::parse_u64) or a full real number in range; anything
// else — trailing junk, overflow, out of range — is a usage error, never a
// silent default. The other subcommands keep the historical lenient
// parsing; new commands should use these.
std::uint64_t strict_integer(const Args& args, const std::string& flag,
                             std::uint64_t fallback, std::uint64_t min,
                             std::uint64_t max) {
  const std::string raw = args.text(flag, "");
  if (raw.empty()) return fallback;
  const std::optional<std::uint64_t> value =
      obs::parse_u64(raw.c_str(), min, max);
  if (!value) {
    usage(("--" + flag + " wants an integer in [" + std::to_string(min) +
           ", " + std::to_string(max) + "], got '" + raw + "'")
              .c_str());
  }
  return *value;
}

double strict_real(const Args& args, const std::string& flag, double fallback,
                   double min, double max) {
  const std::string raw = args.text(flag, "");
  if (raw.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0' || errno == ERANGE || value < min ||
      value > max) {
    usage(("--" + flag + " wants a real in [" + std::to_string(min) + ", " +
           std::to_string(max) + "], got '" + raw + "'")
              .c_str());
  }
  return value;
}

int serve_cmd(const Args& args) {
  serve::ServeConfig config;
  config.domain = strict_integer(args, "n", 1 << 12, 2, 0xffffffffull);
  config.epsilon = strict_real(args, "eps", 1.6, 1e-3, 2.0);
  config.error = strict_real(args, "p", 1.0 / 3.0, 1e-6, 0.499);
  config.bound = args.flag("chernoff") ? core::TailBound::kChernoff
                                       : core::TailBound::kExactBinomial;
  config.streams = strict_integer(args, "streams", 1024, 1, 0xffffffffull);
  config.shards = static_cast<std::uint32_t>(
      strict_integer(args, "shards", 1, 1, 1 << 16));
  config.threads = static_cast<unsigned>(
      strict_integer(args, "threads", 0, 0, 1024));
  config.zipf_theta = strict_real(args, "zipf", 0.99, 0.0, 32.0);
  config.far_every = strict_integer(args, "far-every", 16, 0, 0xffffffffull);
  config.batch_per_epoch =
      strict_integer(args, "batch", 0, 0, std::uint64_t{1} << 32);
  config.seed = strict_integer(args, "seed", 1, 0, ~std::uint64_t{0} - 1);
  const std::uint64_t epochs =
      strict_integer(args, "duration-epochs", 8, 1, 1 << 20);

  // Reject-with-message on infeasible (n, eps, p) regimes, matching the
  // planners above (and FleetMonitor's construction contract).
  const serve::StreamPlan plan =
      serve::plan_stream(config.domain, config.epsilon, config.error,
                         config.bound, config.max_windows);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }

  serve::VerdictService service(config);
  std::printf(
      "serve plan: n=%llu eps=%.3f p=%.3f windows=%llu window-samples=%llu "
      "threshold=%llu fixed-budget=%llu\n",
      static_cast<unsigned long long>(config.domain), config.epsilon,
      config.error, static_cast<unsigned long long>(plan.windows()),
      static_cast<unsigned long long>(plan.window_samples()),
      static_cast<unsigned long long>(plan.reject_threshold()),
      static_cast<unsigned long long>(plan.fixed_budget()));
  std::printf(
      "serve shape: streams=%llu shards=%u threads=%u zipf=%.3f "
      "far-every=%llu batch=%llu seed=%llu\n",
      static_cast<unsigned long long>(config.streams), config.shards,
      config.threads, config.zipf_theta,
      static_cast<unsigned long long>(config.far_every),
      static_cast<unsigned long long>(config.batch_per_epoch == 0
                                          ? config.streams
                                          : config.batch_per_epoch),
      static_cast<unsigned long long>(config.seed));

  // FNV-1a over every verdict's integer fields: one number that must match
  // across any thread/shard configuration.
  std::uint64_t digest = 1469598103934665603ull;
  const auto mix = [&digest](std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      digest ^= (x >> (8 * b)) & 0xffull;
      digest *= 1099511628211ull;
    }
  };

  const obs::StopWatch watch;
  std::vector<std::uint64_t> latencies;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    const serve::EpochResult result = service.run_epoch();
    for (const serve::StreamVerdict& v : result.verdicts) {
      mix(v.stream);
      mix(v.cycle);
      mix(v.first_epoch);
      mix(v.epoch);
      mix(static_cast<std::uint64_t>(v.verdict.status));
      mix(v.verdict.votes_reject);
      mix(v.verdict.votes_total);
      mix(v.verdict.samples_consumed);
      latencies.push_back(v.epoch - v.first_epoch + 1);
    }
    std::printf("epoch %llu: arrivals=%llu verdicts=%zu accepts=%llu "
                "rejects=%llu\n",
                static_cast<unsigned long long>(result.epoch),
                static_cast<unsigned long long>(result.arrivals),
                result.verdicts.size(),
                static_cast<unsigned long long>(result.accepts),
                static_cast<unsigned long long>(result.rejects));
  }
  const double wall = watch.seconds();

  const serve::ServeTotals& totals = service.totals();
  std::printf("totals: epochs=%llu arrivals=%llu accepts=%llu rejects=%llu\n",
              static_cast<unsigned long long>(totals.epochs),
              static_cast<unsigned long long>(totals.arrivals),
              static_cast<unsigned long long>(totals.accepts),
              static_cast<unsigned long long>(totals.rejects));
  const auto mean = [](std::uint64_t samples, std::uint64_t count) {
    return count == 0 ? 0.0
                      : static_cast<double>(samples) /
                            static_cast<double>(count);
  };
  std::printf(
      "samples: mean/accept=%.1f mean/reject=%.1f fixed-budget=%llu\n",
      mean(totals.accept_samples, totals.accepts),
      mean(totals.reject_samples, totals.rejects),
      static_cast<unsigned long long>(plan.fixed_budget()));
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto quantile = [&latencies](double q) {
      const std::size_t idx = static_cast<std::size_t>(
          q * static_cast<double>(latencies.size() - 1));
      return latencies[idx];
    };
    std::printf("latency epochs: p50=%llu p99=%llu max=%llu\n",
                static_cast<unsigned long long>(quantile(0.50)),
                static_cast<unsigned long long>(quantile(0.99)),
                static_cast<unsigned long long>(latencies.back()));
  }
  std::printf("verdict digest: %016llx\n",
              static_cast<unsigned long long>(digest));
  // Wall-clock numbers are not deterministic; the `timing:` prefix lets
  // smoke scripts filter them before diffing configurations.
  std::printf("timing: wall=%.3fs throughput=%.0f arrivals/s\n", wall,
              wall > 0.0 ? static_cast<double>(totals.arrivals) / wall : 0.0);
  return 0;
}

int families_cmd(const Args& args) {
  const std::uint64_t n = args.integer("n", 4096);
  stats::TextTable table({"family", "L1 to uniform", "chi * n", "entropy"});
  struct Row {
    const char* name;
    core::Distribution mu;
  };
  const Row rows[] = {
      {"uniform", core::uniform(n)},
      {"paninski eps=0.5", core::paninski_two_bump(n, 0.5)},
      {"paninski eps=1.0", core::paninski_two_bump(n, 1.0)},
      {"heavy hitter 20%", core::heavy_hitter(n, 0.2)},
      {"zipf s=1.0", core::zipf(n, 1.0)},
      {"support 1/2", core::restricted_support(n, n / 2)},
      {"step 25% x4", core::step(n, 0.25, 4.0)},
  };
  for (const Row& row : rows) {
    table.row()
        .add(row.name)
        .add(row.mu.l1_to_uniform(), 4)
        .add(row.mu.collision_probability() * static_cast<double>(n), 4)
        .add(row.mu.entropy(), 4);
  }
  print(table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Internal worker mode (spawned by --workers): `dut_cli --worker <rank>
  // --shm <name> run-congest <flags...>` — strip the prefix, rebuild the
  // identical run from the remaining flags and serve trials until the
  // coordinator shuts the session down.
  if (argc >= 6 && std::string(argv[1]) == "--worker" &&
      std::string(argv[3]) == "--shm") {
    const auto rank =
        static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
    const std::string shm_name = argv[4];
    if (std::string(argv[5]) != "run-congest") {
      usage("--worker mode only supports run-congest");
    }
    const Args args(argc, argv, 6);
    try {
      return run_congest_worker(rank, shm_name, args);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "worker %u error: %s\n", rank, error.what());
      return 1;
    }
  }

  if (argc < 2) usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  // The raw tail (command included) is what a re-exec'd worker replays.
  std::vector<std::string> raw_args;
  for (int i = 1; i < argc; ++i) raw_args.emplace_back(argv[i]);
  try {
    if (command == "plan-threshold") return plan_threshold_cmd(args);
    if (command == "plan-and") return plan_and_cmd(args);
    if (command == "plan-congest") return plan_congest_cmd(args);
    if (command == "run-threshold") return run_threshold_cmd(args);
    if (command == "run-congest")
      return run_congest_cmd(args, argv[0], raw_args);
    if (command == "serve") return serve_cmd(args);
    if (command == "families") return families_cmd(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  usage(("unknown command '" + command + "'").c_str());
}
