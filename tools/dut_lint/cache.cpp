// Incremental lint cache (DESIGN.md §16.4). The gate runs on every build,
// so the common case — nothing changed since the last run — must cost file
// reads and hashes, not scrubbing + tokenizing + every rule over ~250k
// tokens. The cache stores the (path, FNV-1a content hash) set it was
// computed from, the rule-set hash, and the complete LintResult.
//
// Soundness over cleverness: several passes are cross-TU (verdict producer
// collection, seed taint via the call graph, the single-writer census), so
// a finding in file A can depend on a declaration in file B. Per-file
// finding reuse would therefore be unsound. Instead the cache is
// all-or-nothing: if *any* file changed / appeared / vanished, or the rule
// set itself changed, the whole corpus is rescanned and the cache
// rewritten. Per-file hit/miss counts are still reported so the self-test
// (and curious humans) can see exactly why a run went cold.

#include <fstream>
#include <map>
#include <sstream>

#include "dut/obs/json.hpp"
#include "dut_lint/lint.hpp"

namespace dut::lint {

namespace {

constexpr std::uint64_t kCacheSchemaVersion = 1;

obs::Json finding_json(const Finding& f) {
  obs::Json j = obs::Json::object();
  j.set("rule", f.rule);
  j.set("path", f.path);
  j.set("line", static_cast<std::uint64_t>(f.line));
  j.set("message", f.message);
  j.set("excerpt", f.excerpt);
  return j;
}

Finding finding_from(const obs::Json& j) {
  Finding f;
  f.rule = j.get("rule")->as_string();
  f.path = j.get("path")->as_string();
  f.line = static_cast<std::size_t>(j.get("line")->as_u64());
  f.message = j.get("message")->as_string();
  f.excerpt = j.get("excerpt")->as_string();
  return f;
}

std::string cache_json(const std::vector<SourceText>& sources,
                       const LintResult& result) {
  obs::Json root = obs::Json::object();
  root.set("version", kCacheSchemaVersion);
  root.set("ruleset_hash", ruleset_hash());
  obs::Json files = obs::Json::array();
  for (const SourceText& s : sources) {
    obs::Json entry = obs::Json::object();
    entry.set("path", s.rel_path);
    entry.set("hash", fnv1a64(s.contents));
    files.push(std::move(entry));
  }
  root.set("files", std::move(files));
  obs::Json res = obs::Json::object();
  res.set("files_scanned", static_cast<std::uint64_t>(result.files_scanned));
  obs::Json findings = obs::Json::array();
  for (const Finding& f : result.findings) findings.push(finding_json(f));
  res.set("findings", std::move(findings));
  obs::Json suppressed = obs::Json::array();
  for (const SuppressedFinding& s : result.suppressed) {
    obs::Json entry = finding_json(s.finding);
    entry.set("justification", s.justification);
    suppressed.push(std::move(entry));
  }
  res.set("suppressed", std::move(suppressed));
  root.set("result", std::move(res));
  return root.dump(2) + "\n";
}

/// Parses the cache; throws (std::runtime_error from Json, or via the
/// null-deref guards below) on any malformed/old document — the caller
/// treats every throw as a corrupt cache and falls back to a full scan.
struct ParsedCache {
  std::uint64_t ruleset = 0;
  std::map<std::string, std::uint64_t> file_hash;
  LintResult result;
};

const obs::Json& need(const obs::Json* p) {
  if (p == nullptr) throw std::runtime_error("dut_lint cache: missing key");
  return *p;
}

ParsedCache parse_cache(std::string_view text) {
  ParsedCache out;
  const obs::Json root = obs::Json::parse(text);
  if (need(root.get("version")).as_u64() != kCacheSchemaVersion) {
    throw std::runtime_error("dut_lint cache: unknown version");
  }
  out.ruleset = need(root.get("ruleset_hash")).as_u64();
  const obs::Json& files = need(root.get("files"));
  for (std::size_t i = 0; i < files.size(); ++i) {
    const obs::Json& entry = files.at(i);
    out.file_hash[need(entry.get("path")).as_string()] =
        need(entry.get("hash")).as_u64();
  }
  const obs::Json& res = need(root.get("result"));
  out.result.files_scanned =
      static_cast<std::size_t>(need(res.get("files_scanned")).as_u64());
  const obs::Json& findings = need(res.get("findings"));
  for (std::size_t i = 0; i < findings.size(); ++i) {
    out.result.findings.push_back(finding_from(findings.at(i)));
  }
  const obs::Json& suppressed = need(res.get("suppressed"));
  for (std::size_t i = 0; i < suppressed.size(); ++i) {
    const obs::Json& entry = suppressed.at(i);
    SuppressedFinding s;
    s.finding = finding_from(entry);
    s.justification = need(entry.get("justification")).as_string();
    out.result.suppressed.push_back(std::move(s));
  }
  return out;
}

LintResult full_scan(const std::vector<SourceText>& sources) {
  std::vector<ScannedFile> files;
  files.reserve(sources.size());
  for (const SourceText& s : sources) {
    files.push_back(scan_file(s.rel_path, s.contents));
  }
  return run_lint(files);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t ruleset_hash() {
  std::string acc = "dut_lint-cache-v" + std::to_string(kCacheSchemaVersion);
  for (const RuleInfo& info : rule_table()) {
    acc += '\n';
    acc += info.name;
    acc += '\t';
    acc += info.summary;
  }
  return fnv1a64(acc);
}

LintResult lint_corpus_cached(const std::vector<SourceText>& sources,
                              const std::string& cache_path,
                              CacheStats* stats) {
  CacheStats local;
  CacheStats& st = stats != nullptr ? *stats : local;
  st = CacheStats{};

  if (cache_path.empty()) {
    st.misses = sources.size();
    return full_scan(sources);
  }

  ParsedCache cached;
  bool have_cache = false;
  {
    std::ifstream in(cache_path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      try {
        cached = parse_cache(buf.str());
        have_cache = true;
      } catch (const std::exception&) {
        st.corrupt = true;  // unreadable cache never fails the lint
      }
    }
  }

  bool warm = have_cache && cached.ruleset == ruleset_hash();
  std::size_t seen = 0;
  for (const SourceText& s : sources) {
    const auto it = cached.file_hash.find(s.rel_path);
    const bool known = have_cache && it != cached.file_hash.end();
    if (known) ++seen;  // present in the cache, even if its hash changed
    if (known && it->second == fnv1a64(s.contents)) {
      ++st.hits;
    } else {
      ++st.misses;
      warm = false;
    }
  }
  if (have_cache && seen != cached.file_hash.size()) {
    // Files the cache knows about vanished from the corpus.
    st.misses += cached.file_hash.size() - seen;
    warm = false;
  }

  if (warm) {
    st.full_scan = false;
    return cached.result;
  }

  LintResult result = full_scan(sources);
  st.full_scan = true;
  std::ofstream out(cache_path, std::ios::binary | std::ios::trunc);
  if (out) out << cache_json(sources, result);  // best-effort
  return result;
}

}  // namespace dut::lint
