// Scanning front end: comment/literal scrubbing, tokenization, suppression
// parsing and repo walking. Rules never see comments or string contents, so
// a rule name mentioned in documentation (or a forbidden identifier inside a
// log message) can never produce a finding.

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "dut_lint/lint.hpp"

namespace dut::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// One comment's text, with the line it starts on and the line it ends on.
struct CommentSpan {
  std::string text;
  std::size_t first_line = 0;
  std::size_t last_line = 0;
};

/// A `'` inside a numeric literal (120'000, 0xFF'FF) is a digit separator,
/// not a char-literal quote: scan back over the word containing it — if that
/// word starts with a digit it is a pp-number. Without this, everything
/// between two separators would be scrubbed as one giant char literal.
bool is_digit_separator(std::string_view text, std::size_t i) {
  std::size_t j = i;
  while (j > 0) {
    const char p = text[j - 1];
    if (std::isalnum(static_cast<unsigned char>(p)) || p == '_' || p == '\'') {
      --j;
    } else {
      break;
    }
  }
  return j < i && std::isdigit(static_cast<unsigned char>(text[j]));
}

bool ident_char_raw(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when the `"` at i opens a raw string literal: it must be preceded
/// by a standalone `R` (optionally with an encoding prefix: u8R, uR, UR,
/// LR). A longer identifier that merely *ends* in R (`MACRO_R"x"`) is an
/// ordinary string following an identifier — treating it as raw would eat
/// everything up to the next '(' and derail scrubbing for the rest of the
/// file.
bool is_raw_string_start(std::string_view text, std::size_t i) {
  if (i == 0 || text[i - 1] != 'R') return false;
  std::size_t p = i - 1;  // index of the R
  if (p >= 2 && text[p - 2] == 'u' && text[p - 1] == '8') {
    p -= 2;
  } else if (p >= 1 && (text[p - 1] == 'u' || text[p - 1] == 'U' ||
                        text[p - 1] == 'L')) {
    p -= 1;
  }
  return p == 0 || !ident_char_raw(text[p - 1]);
}

/// Replaces comments and string/char literal contents with spaces (newlines
/// survive, so line numbers are stable) and collects the comment texts.
std::string scrub(std::string_view text, std::vector<CommentSpan>& comments) {
  std::string code;
  code.reserve(text.size());
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::size_t line = 1;
  std::string raw_delim;  // for R"delim( ... )delim"
  CommentSpan current;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') ++line;

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          current = {"", line, line};
          code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          current = {"", line, line};
          code += "  ";
          ++i;
        } else if (c == '"') {
          if (is_raw_string_start(text, i)) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(') raw_delim += text[j++];
            state = State::kRaw;
            code += ' ';
          } else {
            state = State::kString;
            code += ' ';
          }
        } else if (c == '\'') {
          if (is_digit_separator(text, i)) {
            code += c;
          } else {
            state = State::kChar;
            code += ' ';
          }
        } else {
          code += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          comments.push_back(current);
          code += '\n';
        } else {
          current.text += c;
          code += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          current.last_line = line;
          comments.push_back(current);
          state = State::kCode;
          code += "  ";
          ++i;
        } else {
          current.text += c;
          current.last_line = line;
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          code += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code += ' ';
        } else {
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          code += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code += ' ';
        } else {
          code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRaw:
        if (c == ')' &&
            text.substr(i + 1, raw_delim.size()) == raw_delim &&
            i + 1 + raw_delim.size() < text.size() &&
            text[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 2; ++k) code += ' ';
          i += raw_delim.size() + 1;
          state = State::kCode;
        } else {
          code += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  if (state == State::kLine || state == State::kBlock) comments.push_back(current);
  return code;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character operators merged into single tokens, longest first.
constexpr std::string_view kOperators[] = {
    "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "&&", "||", "++", "--"};

std::vector<Token> tokenize(std::string_view code) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < code.size() && ident_char(code[j])) ++j;
      tokens.push_back({std::string(code.substr(i, j - i)), line, true});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (ident_char(code[j]) || code[j] == '.' || code[j] == '\'')) {
        ++j;
      }
      tokens.push_back({std::string(code.substr(i, j - i)), line, false});
      i = j;
      continue;
    }
    bool merged = false;
    for (const std::string_view op : kOperators) {
      if (code.substr(i, op.size()) == op) {
        tokens.push_back({std::string(op), line, false});
        i += op.size();
        merged = true;
        break;
      }
    }
    if (!merged) {
      tokens.push_back({std::string(1, c), line, false});
      ++i;
    }
  }
  return tokens;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Minimum justification length a suppression must carry; short enough to
/// never be the obstacle, long enough to rule out "ok" and "x".
constexpr std::size_t kMinJustification = 8;

/// Parses suppression directives — allow(<rule>), handoff(<field>),
/// ordering(<tag>) — out of one comment. Malformed directives become
/// bad-suppression findings (never suppressible themselves).
void parse_directives(const CommentSpan& comment, const ScannedFile& file,
                      std::vector<std::string_view> code_lines,
                      std::vector<Suppression>& out,
                      std::vector<Annotation>& annotations,
                      std::vector<Finding>& findings) {
  // The directive must be the comment, not merely appear inside one —
  // documentation that quotes the syntax mid-sentence is not a directive.
  constexpr std::string_view kMarker = "dut-lint:";
  const std::string head = trim(comment.text);
  if (!starts_with(head, kMarker)) return;
  const std::size_t pos = comment.text.find(kMarker);

  const auto bad = [&](const std::string& why) {
    findings.push_back({"bad-suppression", file.path, comment.first_line, why,
                        file.excerpt(comment.first_line)});
  };

  std::string_view rest =
      std::string_view(comment.text).substr(pos + kMarker.size());
  const std::string body = trim(rest);
  std::string kind;
  for (const char* k : {"allow", "handoff", "ordering"}) {
    if (starts_with(body, std::string(k) + "(")) kind = k;
  }
  if (kind.empty()) {
    bad("dut-lint directive must be 'allow(<rule>)', 'handoff(<field>)' or "
        "'ordering(<tag>)', each followed by ': <justification>'");
    return;
  }
  const std::size_t close = body.find(')');
  if (close == std::string::npos) {
    bad("unterminated argument in dut-lint " + kind + "()");
    return;
  }
  const std::string arg = trim(body.substr(kind.size() + 1,
                                           close - kind.size() - 1));
  if (kind == "allow") {
    if (!is_known_rule(arg)) {
      bad("unknown rule '" + arg + "' in dut-lint allow()");
      return;
    }
    if (arg == "bad-suppression") {
      bad("bad-suppression findings cannot be suppressed");
      return;
    }
  } else if (arg.empty()) {
    bad("dut-lint " + kind + "() needs a " +
        (kind == "handoff" ? std::string("field name") : std::string("tag")));
    return;
  }
  std::string after = trim(body.substr(close + 1));
  if (!starts_with(after, ":")) {
    bad("dut-lint " + kind + "() must be followed by ': <justification>'");
    return;
  }
  const std::string justification = trim(after.substr(1));
  if (justification.size() < kMinJustification) {
    bad("dut-lint " + kind +
        "() needs a real justification (>= 8 chars)");
    return;
  }

  // A directive sharing its line with code covers that line; a directive
  // alone on its line(s) covers the next line carrying code, so multi-line
  // justification comments and blank separators are fine.
  std::size_t target = comment.first_line;
  const std::size_t idx = comment.first_line - 1;
  if (idx < code_lines.size() && trim(code_lines[idx]).empty()) {
    target = comment.last_line + 1;
    while (target <= code_lines.size() &&
           trim(code_lines[target - 1]).empty()) {
      ++target;
    }
  }
  if (kind == "allow") {
    out.push_back({arg, justification, target, false});
  } else {
    annotations.push_back(
        {kind, arg, justification, target, comment.first_line, false});
  }
}

}  // namespace

FileClass classify_path(std::string_view rel_path) {
  if (starts_with(rel_path, "src/obs/")) return FileClass::kObs;
  if (starts_with(rel_path, "src/")) return FileClass::kLibrary;
  if (starts_with(rel_path, "bench/")) return FileClass::kBench;
  if (starts_with(rel_path, "tests/")) return FileClass::kTest;
  if (starts_with(rel_path, "tools/")) return FileClass::kTool;
  if (starts_with(rel_path, "examples/")) return FileClass::kExample;
  return FileClass::kOther;
}

std::string ScannedFile::excerpt(std::size_t line) const {
  if (line == 0 || line > raw_lines.size()) return "";
  return trim(raw_lines[line - 1]);
}

ScannedFile scan_file(std::string rel_path, std::string_view text) {
  ScannedFile file;
  file.path = std::move(rel_path);
  file.cls = classify_path(file.path);

  for (std::size_t begin = 0; begin <= text.size();) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      file.raw_lines.emplace_back(text.substr(begin));
      break;
    }
    file.raw_lines.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }

  std::vector<CommentSpan> comments;
  const std::string code = scrub(text, comments);
  file.tokens = tokenize(code);

  std::vector<std::string_view> code_lines;
  for (std::size_t begin = 0; begin <= code.size();) {
    const std::size_t end = code.find('\n', begin);
    if (end == std::string::npos) {
      code_lines.push_back(std::string_view(code).substr(begin));
      break;
    }
    code_lines.push_back(std::string_view(code).substr(begin, end - begin));
    begin = end + 1;
  }
  for (const CommentSpan& comment : comments) {
    parse_directives(comment, file, code_lines, file.suppressions,
                     file.annotations, file.scan_findings);
  }
  return file;
}

std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root,
    const std::vector<std::string>& rel_paths) {
  namespace fs = std::filesystem;
  const auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
  };
  const auto skip_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name == "fixtures" || name == "CMakeFiles" || name == ".git" ||
           name == "Testing" || starts_with(name, "build");
  };

  std::vector<fs::path> out;
  for (const std::string& rel : rel_paths) {
    const fs::path base = root / rel;
    if (fs::is_regular_file(base)) {
      out.push_back(base);
      continue;
    }
    if (!fs::is_directory(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && is_source(it->path())) {
        out.push_back(it->path());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dut::lint
