// Baseline handling and output formatting. The baseline matches findings by
// (rule, path, excerpt) so line drift from unrelated edits never churns it;
// matching is multiset-style, one entry per finding.

#include <map>
#include <sstream>
#include <tuple>

#include "dut/obs/json.hpp"
#include "dut_lint/lint.hpp"

namespace dut::lint {

namespace {

using Key = std::tuple<std::string, std::string, std::string>;

Key key_of(const BaselineEntry& e) { return {e.rule, e.path, e.excerpt}; }
Key key_of(const Finding& f) { return {f.rule, f.path, f.excerpt}; }

obs::Json finding_json(const Finding& f) {
  obs::Json j = obs::Json::object();
  j.set("rule", f.rule);
  j.set("path", f.path);
  j.set("line", static_cast<std::uint64_t>(f.line));
  j.set("message", f.message);
  j.set("excerpt", f.excerpt);
  return j;
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(std::string_view json_text) {
  const obs::Json doc = obs::Json::parse(json_text);
  const obs::Json* version = doc.get("version");
  if (version == nullptr || version->as_u64() != 1) {
    throw std::runtime_error("baseline: unsupported or missing version");
  }
  std::vector<BaselineEntry> out;
  const obs::Json* findings = doc.get("findings");
  if (findings == nullptr || !findings->is_array()) {
    throw std::runtime_error("baseline: missing findings array");
  }
  for (std::size_t i = 0; i < findings->size(); ++i) {
    const obs::Json& f = findings->at(i);
    const obs::Json* rule = f.get("rule");
    const obs::Json* path = f.get("path");
    const obs::Json* excerpt = f.get("excerpt");
    if (rule == nullptr || path == nullptr || excerpt == nullptr) {
      throw std::runtime_error("baseline: entry missing rule/path/excerpt");
    }
    out.push_back({rule->as_string(), path->as_string(),
                   excerpt->as_string()});
  }
  return out;
}

std::string baseline_json(const std::vector<Finding>& findings) {
  obs::Json doc = obs::Json::object();
  doc.set("version", std::uint64_t{1});
  obs::Json arr = obs::Json::array();
  for (const Finding& f : findings) {
    obs::Json e = obs::Json::object();
    e.set("rule", f.rule);
    e.set("path", f.path);
    e.set("excerpt", f.excerpt);
    arr.push(std::move(e));
  }
  doc.set("findings", std::move(arr));
  return doc.dump(2) + "\n";
}

BaselineDiff diff_baseline(const std::vector<Finding>& findings,
                           const std::vector<BaselineEntry>& baseline) {
  BaselineDiff diff;
  std::map<Key, std::size_t> pool;
  for (const BaselineEntry& e : baseline) ++pool[key_of(e)];
  for (const Finding& f : findings) {
    const auto it = pool.find(key_of(f));
    if (it != pool.end() && it->second > 0) {
      --it->second;
      ++diff.matched;
    } else {
      diff.fresh.push_back(f);
    }
  }
  for (const BaselineEntry& e : baseline) {
    auto it = pool.find(key_of(e));
    if (it->second > 0) {
      --it->second;
      diff.stale.push_back(e);
    }
  }
  return diff;
}

std::string result_json(const LintResult& result, const BaselineDiff& diff) {
  obs::Json doc = obs::Json::object();
  doc.set("version", std::uint64_t{1});
  doc.set("files_scanned", static_cast<std::uint64_t>(result.files_scanned));

  obs::Json findings = obs::Json::array();
  for (const Finding& f : result.findings) findings.push(finding_json(f));
  doc.set("findings", std::move(findings));

  obs::Json suppressed = obs::Json::array();
  for (const SuppressedFinding& s : result.suppressed) {
    obs::Json j = finding_json(s.finding);
    j.set("justification", s.justification);
    suppressed.push(std::move(j));
  }
  doc.set("suppressed", std::move(suppressed));

  obs::Json baseline = obs::Json::object();
  baseline.set("matched", static_cast<std::uint64_t>(diff.matched));
  obs::Json fresh = obs::Json::array();
  for (const Finding& f : diff.fresh) fresh.push(finding_json(f));
  baseline.set("fresh", std::move(fresh));
  obs::Json stale = obs::Json::array();
  for (const BaselineEntry& e : diff.stale) {
    obs::Json j = obs::Json::object();
    j.set("rule", e.rule);
    j.set("path", e.path);
    j.set("excerpt", e.excerpt);
    stale.push(std::move(j));
  }
  baseline.set("stale", std::move(stale));
  doc.set("baseline", std::move(baseline));
  return doc.dump(2) + "\n";
}

std::vector<Finding> baselineable_findings(
    const LintResult& result, std::vector<BaselineEntry>* refused) {
  // A finding whose (rule, path, excerpt) key collides with an in-source
  // suppressed finding must not enter the baseline: the diff cannot tell
  // the two sites apart, so once the active twin is fixed the baseline
  // entry would silently cover the suppressed site forever (double-booked).
  std::map<Key, std::size_t> suppressed_keys;
  for (const SuppressedFinding& s : result.suppressed) {
    ++suppressed_keys[key_of(s.finding)];
  }
  std::vector<Finding> out;
  for (const Finding& f : result.findings) {
    if (suppressed_keys.count(key_of(f)) > 0) {
      if (refused != nullptr) {
        refused->push_back({f.rule, f.path, f.excerpt});
      }
      continue;
    }
    out.push_back(f);
  }
  return out;
}

std::string human_report(const LintResult& result, const BaselineDiff& diff) {
  std::ostringstream out;
  for (const Finding& f : diff.fresh) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (!f.excerpt.empty()) out << "    " << f.excerpt << "\n";
  }
  for (const BaselineEntry& e : diff.stale) {
    out << "warning: stale baseline entry [" << e.rule << "] " << e.path
        << " '" << e.excerpt << "' — regenerate with --write-baseline\n";
  }
  out << "dut_lint: " << diff.fresh.size() << " new finding"
      << (diff.fresh.size() == 1 ? "" : "s") << " (" << diff.matched
      << " baselined, " << result.suppressed.size() << " suppressed, "
      << diff.stale.size() << " stale) across " << result.files_scanned
      << " files\n";
  return out.str();
}

}  // namespace dut::lint
