// Declaration-level call graph (DESIGN.md §16). One pass per file builds a
// name-aware scope tracker — which function definition owns each token,
// which struct/class encloses it — plus the function declarations (with
// parameter names by position) and the call sites inside function bodies
// (with top-level argument token ranges). The seed-flow taint pass uses
// by_name to resolve a callee's parameter names across translation units;
// the concurrency census uses func_of to name each atomic write's owner
// scope. Like compute_in_function in rules.cpp, misclassification is biased
// toward *not* attributing: an unresolvable declarator becomes an anonymous
// frame, never a wrong name.

#include <algorithm>
#include <set>

#include "dut_lint/lint.hpp"

namespace dut::lint {

namespace {

/// Keywords that look like `name (` but never are calls or declarators.
bool keywordish(const std::string& s) {
  static const std::set<std::string> kWords = {
      "if",        "for",      "while",     "switch",        "return",
      "catch",     "sizeof",   "alignof",   "alignas",       "decltype",
      "noexcept",  "throw",    "new",       "delete",        "operator",
      "requires",  "co_await", "co_yield",  "co_return",     "static_assert",
      "assert",    "defined",  "typeid",    "static_cast",   "const_cast",
      "dynamic_cast", "reinterpret_cast"};
  return kWords.count(s) > 0;
}

/// Idents that can end a parameter's *type* but never name the parameter.
bool type_tail_keyword(const std::string& s) {
  static const std::set<std::string> kWords = {
      "const",  "volatile", "unsigned", "signed",   "long",   "short",
      "int",    "bool",     "char",     "float",    "double", "void",
      "auto",   "struct",   "class",    "typename", "enum"};
  return kWords.count(s) > 0;
}

/// Index of the `)` matching the `(` at `open` (or toks.size()).
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

/// Parameter name for one comma-separated segment [begin, end): the last
/// identifier that is not a qualified-name component and not a type
/// keyword, cut at a default-argument `=`. "" when the segment declares an
/// unnamed (type-only) parameter — callers treat "" as unknown.
std::string param_name(const std::vector<Token>& toks, std::size_t begin,
                       std::size_t end) {
  std::size_t stop = end;
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = toks[i].text;
    if (t == "(" || t == "<" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == ">" || t == "]" || t == "}") --depth;
    if (depth == 0 && t == "=") {
      stop = i;
      break;
    }
  }
  std::string name;
  std::size_t idents = 0;
  for (std::size_t i = begin; i < stop; ++i) {
    if (!toks[i].is_ident) continue;
    ++idents;
    if (type_tail_keyword(toks[i].text)) continue;
    // `std` in `std::uint64_t` is followed by `::`; skip name components.
    if (i + 1 < stop && toks[i + 1].text == "::") continue;
    name = toks[i].text;
  }
  // A single identifier is a type-only (unnamed) parameter: `f(seed_t)`.
  if (idents < 2) return "";
  // `std::uint64_t` alone: the survivor is preceded by `::` with nothing
  // after it — if the chosen name directly follows `::` and is the last
  // identifier of a pure qualified name, there was no declarator ident.
  return name;
}

/// Splits the argument/parameter list inside (open, close) at top-level
/// commas; returns [begin, end) token ranges, empty for `()`.
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& toks, std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (close <= open + 1) return out;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = toks[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if (depth == 0 && t == ",") {
      out.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  out.emplace_back(begin, close);
  return out;
}

struct Frame {
  char kind;  // 'n'amespace, 't'ype, 'f'unction, 'b'lock
  int decl = -1;
  std::string record;
};

void build_file_graph(const ScannedFile& file, FileGraph& fg) {
  const std::vector<Token>& toks = file.tokens;
  fg.file = &file;
  fg.func_of.assign(toks.size(), -1);
  fg.record_of.assign(toks.size(), "");

  std::vector<Frame> frames;
  int paren_depth = 0;
  char pending = 0;
  std::string pending_name;
  bool in_base_clause = false;
  bool after_params = false;
  bool in_ctor_init = false;
  std::size_t sig_open = 0;
  bool sig_valid = false;

  const auto innermost_func = [&]() -> int {
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (it->kind == 'f') return it->decl;
    }
    return -1;
  };
  const auto innermost_record = [&]() -> std::string {
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (it->kind == 't') return it->record;
    }
    return "";
  };
  const auto in_function = [&]() {
    return std::any_of(frames.begin(), frames.end(),
                       [](const Frame& f) { return f.kind == 'f'; });
  };

  // Materializes the declaration whose parameter list opened at sig_open.
  const auto make_decl = [&](bool is_definition) -> int {
    if (!sig_valid || sig_open == 0) return -1;
    FunctionDecl decl;
    decl.path = file.path;
    decl.is_definition = is_definition;
    const std::size_t name_at = sig_open - 1;
    if (toks[name_at].is_ident && !keywordish(toks[name_at].text)) {
      decl.name = toks[name_at].text;
      decl.line = toks[name_at].line;
      // `A::B::name(` — fold the qualified prefix.
      std::size_t q = name_at;
      while (q >= 2 && toks[q - 1].text == "::" && toks[q - 2].is_ident) {
        decl.qualifier = decl.qualifier.empty()
                             ? toks[q - 2].text
                             : toks[q - 2].text + "::" + decl.qualifier;
        q -= 2;
      }
      if (decl.qualifier.empty()) decl.qualifier = innermost_record();
    } else if (is_definition) {
      decl.name = "(lambda)";
      decl.line = toks[sig_open].line;
    } else {
      return -1;
    }
    const std::size_t close = match_paren(toks, sig_open);
    for (const auto& [b, e] : split_args(toks, sig_open, close)) {
      if (b >= e) continue;  // `()`
      decl.params.push_back(param_name(toks, b, e));
    }
    fg.decls.push_back(std::move(decl));
    return static_cast<int>(fg.decls.size()) - 1;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    fg.func_of[i] = innermost_func();
    fg.record_of[i] = innermost_record();
    const std::string& t = toks[i].text;
    const std::string prev = i > 0 ? toks[i - 1].text : std::string();

    if (t == "(") {
      // The first top-level paren group of a declarator is the candidate
      // parameter list; later groups (noexcept(...), requires(...)) keep it.
      if (paren_depth == 0 && !after_params) {
        sig_open = i;
        sig_valid = true;
      }
      ++paren_depth;
      continue;
    }
    if (t == ")") {
      if (paren_depth > 0) --paren_depth;
      if (paren_depth == 0) after_params = true;
      continue;
    }
    if (paren_depth > 0) continue;

    if (toks[i].is_ident) {
      if (t == "namespace") {
        pending = 'n';
      } else if (t == "class" || t == "struct" || t == "union" ||
                 t == "enum") {
        pending = 't';
        pending_name.clear();
        in_base_clause = false;
      } else if (pending == 't' && !in_base_clause && t != "final") {
        pending_name = t;  // latest ident before the body/base clause
      }
      continue;
    }
    if (t == ";") {
      if (after_params && !in_ctor_init && !in_function()) {
        make_decl(/*is_definition=*/false);
      }
      pending = 0;
      after_params = false;
      in_ctor_init = false;
      in_base_clause = false;
      sig_valid = false;
    } else if (t == "," || t == "=") {
      if (!in_ctor_init) {
        after_params = false;
        sig_valid = false;
      }
    } else if (t == ":" && after_params) {
      in_ctor_init = true;
    } else if (t == ":" && pending == 't') {
      in_base_clause = true;
    } else if (t == "{") {
      Frame frame{'b', -1, ""};
      if (pending == 'n') {
        frame.kind = 'n';
      } else if (pending == 't') {
        frame.kind = 't';
        frame.record = pending_name;
      } else if (in_ctor_init) {
        if (prev == ")" || prev == "}") {
          frame.kind = 'f';
          in_ctor_init = false;
        }
      } else if (after_params) {
        frame.kind = 'f';
      }
      if (frame.kind == 'f') {
        // Control-flow headers (`if (...) {`) reach here too; inside a
        // function they are plain blocks of the enclosing definition.
        const std::size_t name_at = sig_valid && sig_open > 0 ? sig_open - 1
                                                              : 0;
        const bool control = sig_valid && toks[name_at].is_ident &&
                             keywordish(toks[name_at].text);
        if (in_function() || control || !sig_valid) {
          frame.kind = 'b';
        } else {
          frame.decl = make_decl(/*is_definition=*/true);
        }
      }
      frames.push_back(std::move(frame));
      pending = 0;
      after_params = false;
      sig_valid = false;
    } else if (t == "}") {
      if (!frames.empty()) frames.pop_back();
    }
  }

  // Call sites: `name (` inside a function body. Member-access prefixes
  // (`x.f(`, `p->f(`) are calls too — the taint pass resolves by name only.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident || toks[i + 1].text != "(") continue;
    if (fg.func_of[i] < 0) continue;
    if (keywordish(toks[i].text)) continue;
    CallSite call;
    call.callee = toks[i].text;
    call.token_index = i;
    call.line = toks[i].line;
    call.caller = fg.func_of[i];
    const std::size_t close = match_paren(toks, i + 1);
    for (const auto& [b, e] : split_args(toks, i + 1, close)) {
      if (b >= e) continue;
      call.args.emplace_back(b, e);
    }
    fg.calls.push_back(std::move(call));
  }
}

}  // namespace

CallGraph build_call_graph(const std::vector<ScannedFile>& files) {
  CallGraph graph;
  graph.files.resize(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    build_file_graph(files[i], graph.files[i]);
  }
  for (const FileGraph& fg : graph.files) {
    for (const FunctionDecl& d : fg.decls) {
      if (d.name != "(lambda)") graph.by_name[d.name].push_back(&d);
    }
  }
  return graph;
}

}  // namespace dut::lint
