// Seed-flow taint pass (DESIGN.md §16.2). The determinism contract says a
// raw sweep seed may become RNG state only inside the blessed derivation
// funnels (stats::derive_stream and the engine/fault/serve fan-outs that
// call it); everywhere else a seed must be *keyed* — mixed with trial /
// round / edge / stream context — before re-derivation, and merge loops
// that fold per-rank or per-stream results must walk ascending order so
// floating-point and tally accumulation is bit-identical everywhere.
//
// Three rules, all cross-checked against the declaration call graph:
//   seed-unkeyed-derivation  RNG state (SplitMix64 / Xoshiro256) built from
//                            a single bare seed-like identifier outside the
//                            funnels. `SplitMix64(seed ^ r)` is keyed; bare
//                            `SplitMix64(seed)` is the bug.
//   seed-escapes-funnel      a bare seed-like identifier passed into a
//                            callee position whose declared parameter (in
//                            every declaration of that name, corpus-wide)
//                            is not itself seed-like — the seed leaves the
//                            funnel under a non-seed name and the next
//                            reader cannot tell it must be keyed.
//   merge-not-rank-ordered   a loop that iterates in reverse (`--`, rbegin/
//                            rend) around a merge/absorb call — rank-order
//                            merges must ascend.
//
// The pass is deliberately lenient at the edges: unknown callees, unnamed
// parameters and variadic positions never fire. A seed that is *expressed*
// (`seed ^ r`, `derive(seed, t)`) is already keyed or funneled and is fine.

#include <algorithm>
#include <cctype>
#include <set>

#include "dut_lint/lint.hpp"

namespace dut::lint {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool seed_like(std::string_view name) {
  const std::string l = lower(name);
  return l.find("seed") != std::string::npos ||
         l.find("salt") != std::string::npos;
}

/// Files allowed to turn a bare seed into RNG state: the derivation funnel
/// itself plus the engine trial fan-out, FaultPlan counter draws and
/// serve::plan_stream — the places DESIGN.md names as seed origins.
bool blessed_funnel(std::string_view path) {
  static const std::set<std::string, std::less<>> kFunnels = {
      "src/stats/include/dut/stats/rng.hpp",
      "src/stats/src/rng.cpp",
      "src/stats/include/dut/stats/engine.hpp",
      "src/stats/src/engine.cpp",
      "src/net/src/engine.cpp",
      "src/net/src/fault.cpp",
      "src/serve/src/sequential_collision.cpp",
  };
  return kFunnels.count(path) > 0;
}

/// Functions that accept a bare seed by design: the funnel entry points.
bool funnel_callee(std::string_view name) {
  return name == "derive_stream" || name == "SplitMix64" ||
         name == "Xoshiro256";
}

/// True when the argument range is exactly one bare seed-like identifier.
/// Any expression (`seed ^ r`, `ctx.seed`, `derive(seed)`) is multi-token
/// and therefore keyed or funneled on its own terms.
bool bare_seed_arg(const std::vector<Token>& toks,
                   std::pair<std::size_t, std::size_t> range) {
  if (range.second != range.first + 1) return false;
  const Token& t = toks[range.first];
  return t.is_ident && seed_like(t.text);
}

/// Index of the token after the `}` matching the `{` at `open` (or after
/// the `;` ending a single statement when `open` is not a brace).
std::size_t body_end(const std::vector<Token>& toks, std::size_t open) {
  if (open >= toks.size()) return toks.size();
  if (toks[open].text != "{") {
    for (std::size_t i = open; i < toks.size(); ++i) {
      if (toks[i].text == ";") return i + 1;
    }
    return toks.size();
  }
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i + 1;
  }
  return toks.size();
}

std::size_t matching_close(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

void check_derivations(const ScannedFile& file, const FileGraph& fg,
                       std::vector<Finding>& out) {
  if (blessed_funnel(file.path)) return;
  const std::vector<Token>& toks = file.tokens;
  for (const CallSite& call : fg.calls) {
    if (call.callee != "SplitMix64" && call.callee != "Xoshiro256") continue;
    if (call.args.size() != 1 || !bare_seed_arg(toks, call.args[0])) continue;
    Finding f;
    f.rule = "seed-unkeyed-derivation";
    f.path = file.path;
    f.line = call.line;
    f.message = call.callee + "(" + toks[call.args[0].first].text +
                ") builds RNG state from a bare seed outside the blessed "
                "funnels; key it with trial/round/edge/stream context "
                "(e.g. derive_stream) first";
    f.excerpt = file.excerpt(call.line);
    out.push_back(std::move(f));
  }
}

void check_escapes(const ScannedFile& file, const CallGraph& graph,
                   const FileGraph& fg, std::vector<Finding>& out) {
  const std::vector<Token>& toks = file.tokens;
  for (const CallSite& call : fg.calls) {
    if (funnel_callee(call.callee) || seed_like(call.callee)) continue;
    auto it = graph.by_name.find(call.callee);
    if (it == graph.by_name.end()) continue;  // unknown callee: lenient
    for (std::size_t k = 0; k < call.args.size(); ++k) {
      if (!bare_seed_arg(toks, call.args[k])) continue;
      // Fire only when *every* declaration of this name declares position k
      // with a known, non-seed-like parameter name. One seed-like or
      // unnamed declaration anywhere gives the call the benefit of doubt.
      bool all_reject = true;
      for (const FunctionDecl* decl : it->second) {
        if (decl->params.size() <= k || decl->params[k].empty() ||
            seed_like(decl->params[k])) {
          all_reject = false;
          break;
        }
      }
      if (!all_reject) continue;
      const FunctionDecl* decl = it->second.front();
      Finding f;
      f.rule = "seed-escapes-funnel";
      f.path = file.path;
      f.line = call.line;
      f.message = "bare seed '" + toks[call.args[k].first].text +
                  "' passed to " + call.callee + "() parameter '" +
                  decl->params[k] + "' (" + decl->path +
                  "): the seed escapes the derivation funnel under a "
                  "non-seed name";
      f.excerpt = file.excerpt(call.line);
      out.push_back(std::move(f));
    }
  }
}

void check_merge_order(const ScannedFile& file, const FileGraph& fg,
                       std::vector<Finding>& out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident || toks[i].text != "for") continue;
    if (toks[i + 1].text != "(") continue;
    const std::size_t open = i + 1;
    const std::size_t close = matching_close(toks, open);
    if (close >= toks.size()) continue;
    bool reversed = false;
    for (std::size_t j = open + 1; j < close; ++j) {
      const std::string& t = toks[j].text;
      if (t == "--" || (t == "-" && j + 1 < close && toks[j + 1].text == "-")) {
        reversed = true;
      }
      if (toks[j].is_ident &&
          (t == "rbegin" || t == "rend" || t == "crbegin" || t == "crend")) {
        reversed = true;
      }
    }
    if (!reversed) continue;
    const std::size_t end = body_end(toks, close + 1);
    for (std::size_t j = close + 1; j + 1 < end; ++j) {
      if (!toks[j].is_ident || toks[j + 1].text != "(") continue;
      const std::string l = lower(toks[j].text);
      if (l.find("merge") == std::string::npos &&
          l.find("absorb") == std::string::npos) {
        continue;
      }
      Finding f;
      f.rule = "merge-not-rank-ordered";
      f.path = file.path;
      f.line = toks[j].line;
      f.message = toks[j].text +
                  "() called from a loop iterating in reverse; rank-order "
                  "merges must walk ascending (rank, shard, stream) order "
                  "for bit-identical accumulation";
      f.excerpt = file.excerpt(toks[j].line);
      out.push_back(std::move(f));
      break;  // one finding per loop
    }
  }
}

}  // namespace

void run_taint_rules(const ScannedFile& file, const CallGraph& graph,
                     const FileGraph& fg, std::vector<Finding>& out) {
  if (file.cls != FileClass::kLibrary && file.cls != FileClass::kObs) return;
  check_derivations(file, fg, out);
  check_escapes(file, graph, fg, out);
  check_merge_order(file, fg, out);
}

}  // namespace dut::lint
