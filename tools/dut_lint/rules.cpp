// Rule implementations. Two corpus passes feed the verdict rules: pass one
// collects "result types" (core::Verdict plus every *Result struct carrying
// a Verdict member) and the producer functions returning them; pass two runs
// the per-file token rules. Everything works on scrubbed tokens, so string
// literals and comments can name any identifier freely.

#include <algorithm>
#include <map>
#include <set>

#include "dut_lint/lint.hpp"

namespace dut::lint {

namespace {

constexpr RuleInfo kRules[] = {
    {"no-random-device",
     "std::random_device draws OS entropy; seeded Xoshiro streams are the "
     "only sanctioned randomness (bit-identical sweeps, DESIGN.md §8)",
     "DESIGN.md §12",
     "Bit-identical Monte-Carlo sweeps: every random draw derives from the "
     "run seed, so a sweep replays exactly at any thread/rank count"},
    {"no-libc-rand",
     "rand()/srand()/random()/drand48() share hidden global state and break "
     "per-trial stream derivation",
     "DESIGN.md §12",
     "Per-trial stream independence: the (salt^seed, trial, round, edge, "
     "msg_index) funnel cannot coexist with hidden libc RNG state"},
    {"no-wall-clock",
     "wall-clock reads outside src/obs/ and bench/ make output depend on "
     "when it ran, not on (seed, input)",
     "DESIGN.md §12",
     "Verdicts are a pure function of (seed, input): the threshold rule's "
     "error bounds are meaningless if decisions see the clock"},
    {"clock-funnel",
     "within src/obs/ and bench/, wall-clock reads are confined to "
     "obs::StopWatch/obs::PhaseTimer in dut/obs/phase_timer.hpp — one "
     "clock for every phase histogram and perf figure",
     "DESIGN.md §12",
     "One clock for every timing figure: phase histograms and bench "
     "reports stay comparable and fakeable from a single funnel"},
    {"no-mutable-static",
     "mutable function-local statics in library code are hidden cross-trial "
     "state; immutable/const/reference latches are exempt",
     "DESIGN.md §12",
     "Trial re-runnability: engines are pooled and re-run; cross-trial "
     "state would couple trials the analysis treats as independent"},
    {"no-unordered-iteration",
     "unordered container iteration order is unspecified; verdicts, traces "
     "and reports must not depend on it (tests exempt)",
     "DESIGN.md §12",
     "Deterministic iteration: verdict streams, traces and reports must "
     "not depend on hash-table order, which varies across libraries"},
    {"seed-unkeyed-derivation",
     "RNG state built from a bare seed outside the blessed derivation "
     "funnels (no trial/round/edge/stream keying)",
     "DESIGN.md §16.2",
     "Per-trial stream independence (paper Thm. 1 error bounds): two "
     "streams built from the same bare seed are the *same* stream, and "
     "collision statistics computed from them are silently correlated"},
    {"seed-escapes-funnel",
     "a bare seed forwarded into a callee parameter that is not itself a "
     "seed (cross-TU, via the declaration call graph)",
     "DESIGN.md §16.2",
     "Seed provenance: once a seed travels under a non-seed parameter "
     "name, the next maintainer cannot know it must be keyed before "
     "re-derivation — the leak that correlates trials arrives one call "
     "later"},
    {"merge-not-rank-ordered",
     "verdict/metrics/budget merge loop iterating in a non-ascending "
     "(reversed) order",
     "DESIGN.md §16.2",
     "Rank-order merge determinism: verdict streams are bit-identical "
     "across threads, shards, ranks and transports only because every "
     "merge folds results in ascending (rank, shard, stream) order"},
    {"wire-cast-confined",
     "reinterpret_cast on wire/shared bytes is confined to net/message.hpp "
     "and the transport serialization funnel (net transport shm_session); "
     "the declared-width field API is the only wire format",
     "DESIGN.md §12",
     "Declared-width CONGEST budget: every wire field is counted by the "
     "push_field API, so the paper's communication bounds are measured, "
     "not assumed"},
    {"os-primitives-confined",
     "process, shared-memory and timing OS primitives (mmap/shm_open/fork/"
     "nanosleep/...) live only in the net transport layer; protocol and "
     "library code stays single-process and deterministic",
     "DESIGN.md §12",
     "Transport seam integrity: protocol code runs identically under "
     "every Transport backend because only the transport owns processes, "
     "shared memory and waits"},
    {"bits-funnel",
     "Message/Verdict bit totals are accumulated by push_field and "
     "Verdict::make; manual .bits writes under-report the CONGEST budget",
     "DESIGN.md §12",
     "Bit-budget accounting: the CONGEST width claims hold because "
     "push_field/Verdict::make are the only writers of .bits"},
    {"verdict-nodiscard",
     "public APIs returning a verdict/result type must be [[nodiscard]]; a "
     "dropped verdict is a silently ignored protocol outcome",
     "DESIGN.md §12",
     "No silent verdict loss: every protocol outcome is observed or "
     "deliberately (and visibly) discarded"},
    {"verdict-discarded",
     "verdict-returning call discarded at statement position",
     "DESIGN.md §12",
     "No silent verdict loss: a discarded verdict is an ignored protocol "
     "outcome — the reject-biased fault contract only holds if rejects "
     "are seen"},
    {"shared-write-outside-owner",
     "an atomic field of a shared transport/serve struct written from more "
     "than one function without a handoff annotation",
     "DESIGN.md §16.3",
     "Single-writer SPSC discipline: ring tails belong to the writer, "
     "heads to the reader, trial controls to the coordinator — the "
     "lock-free protocol is only correct with exactly one writer scope "
     "per field"},
    {"atomic-ordering-unjustified",
     "a non-relaxed memory_order without an ordering justification comment",
     "DESIGN.md §16.3",
     "Halt-visibility and publish edges: each non-relaxed ordering is a "
     "protocol edge (publish/consume, quiescence, abort visibility) and "
     "must state which edge it establishes"},
    {"bad-suppression",
     "dut-lint allow()/handoff()/ordering() comment is malformed, names an "
     "unknown rule, lacks a justification, or covers nothing",
     "DESIGN.md §12",
     "Auditability of every exemption: a suppression or census annotation "
     "that is malformed or dangling is itself a finding"},
};

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// in_function[i]: token i sits inside a function (or lambda) body. A
/// heuristic brace tracker: frames opened after a parameter list — including
/// constructor-initializer bodies — count as functions; namespace/type
/// frames do not. Misclassification errs toward false negatives, never
/// toward flagging namespace-scope declarations.
std::vector<bool> compute_in_function(const std::vector<Token>& tokens) {
  std::vector<bool> in_function(tokens.size(), false);
  std::vector<char> frames;  // 'n'amespace, 't'ype, 'f'unction, 'b'lock
  int func_depth = 0;
  int paren_depth = 0;
  char pending = 0;
  bool after_params = false;
  bool in_ctor_init = false;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    in_function[i] = func_depth > 0;
    const std::string& t = tokens[i].text;
    const std::string prev = i > 0 ? tokens[i - 1].text : std::string();
    if (t == "(") {
      ++paren_depth;
      continue;
    }
    if (t == ")") {
      if (paren_depth > 0) --paren_depth;
      if (paren_depth == 0) after_params = true;
      continue;
    }
    if (paren_depth > 0) continue;

    if (tokens[i].is_ident) {
      if (t == "namespace") {
        pending = 'n';
      } else if (t == "class" || t == "struct" || t == "union" ||
                 t == "enum") {
        pending = 't';
      }
      // const/noexcept/override/final/trailing-return idents keep
      // after_params alive on the way to the body brace.
      continue;
    }
    if (t == ";") {
      pending = 0;
      after_params = false;
      in_ctor_init = false;
    } else if (t == "," || t == "=") {
      if (!in_ctor_init) after_params = false;
    } else if (t == ":" && after_params) {
      in_ctor_init = true;
    } else if (t == "{") {
      char kind = 'b';
      if (pending == 'n') {
        kind = 'n';
      } else if (pending == 't') {
        kind = 't';
      } else if (in_ctor_init) {
        kind = (prev == ")" || prev == "}") ? 'f' : 'b';
        if (kind == 'f') in_ctor_init = false;
      } else if (after_params) {
        kind = 'f';
      }
      frames.push_back(kind);
      if (kind == 'f') ++func_depth;
      pending = 0;
      after_params = false;
    } else if (t == "}") {
      if (!frames.empty()) {
        if (frames.back() == 'f' && func_depth > 0) --func_depth;
        frames.pop_back();
      }
    }
  }
  return in_function;
}

/// Declaration corpus shared by the verdict rules.
struct Corpus {
  std::set<std::string> result_types;
  std::set<std::string> nodiscard_types;
  /// producer name -> protected (function or its return type [[nodiscard]])
  std::map<std::string, bool> producers;
  /// (file, token index) of unprotected producer declarations in src/ headers
  std::vector<std::pair<const ScannedFile*, std::size_t>> unprotected_decls;
};

bool is_cpp_keyword_like(const std::string& s) {
  static const std::set<std::string> kWords = {
      "if", "for", "while", "switch", "return", "const", "constexpr",
      "static", "inline", "virtual", "friend", "typename", "template",
      "operator", "new", "delete", "sizeof", "case", "throw", "co_return"};
  return kWords.count(s) > 0;
}

/// Looks back from token `i` (the return-type token) for a [[nodiscard]]
/// attribute on the same declaration.
bool has_nodiscard_before(const std::vector<Token>& tokens, std::size_t i) {
  std::size_t steps = 0;
  while (i > 0 && steps < 10) {
    --i;
    ++steps;
    const std::string& t = tokens[i].text;
    if (t == ";" || t == "{" || t == "}" || t == ")") break;
    if (t == "nodiscard") return true;
  }
  return false;
}

void collect_types(const ScannedFile& file, Corpus& corpus) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident ||
        (toks[i].text != "struct" && toks[i].text != "class")) {
      continue;
    }
    // Skip attributes between the keyword and the name.
    std::size_t j = i + 1;
    bool nodiscard = false;
    while (j < toks.size() && toks[j].text == "[") {
      while (j < toks.size() && toks[j].text != "]") {
        if (toks[j].text == "nodiscard") nodiscard = true;
        ++j;
      }
      while (j < toks.size() && toks[j].text == "]") ++j;
    }
    if (j >= toks.size() || !toks[j].is_ident) continue;
    const std::string name = toks[j].text;

    const bool verdict_named = name == "Verdict";
    if (!verdict_named && !ends_with(name, "Result")) continue;

    // Find the body and (for *Result types) require a Verdict member.
    std::size_t k = j + 1;
    while (k < toks.size() && toks[k].text != "{" && toks[k].text != ";") ++k;
    if (k >= toks.size() || toks[k].text == ";") {
      if (verdict_named) {
        corpus.result_types.insert(name);
        if (nodiscard) corpus.nodiscard_types.insert(name);
      }
      continue;
    }
    int depth = 0;
    bool has_verdict_member = false;
    for (std::size_t b = k; b < toks.size(); ++b) {
      if (toks[b].text == "{") ++depth;
      if (toks[b].text == "}" && --depth == 0) break;
      if (toks[b].is_ident && toks[b].text == "Verdict") {
        has_verdict_member = true;
      }
    }
    if (verdict_named || has_verdict_member) {
      corpus.result_types.insert(name);
      if (nodiscard) corpus.nodiscard_types.insert(name);
    }
  }
}

void collect_producers(const ScannedFile& file, Corpus& corpus) {
  const std::vector<Token>& toks = file.tokens;
  const std::vector<bool> in_function = compute_in_function(toks);
  const bool public_header = file.cls != FileClass::kTest &&
                             ends_with(file.path, ".hpp") &&
                             file.path.rfind("src/", 0) == 0;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].is_ident || corpus.result_types.count(toks[i].text) == 0) {
      continue;
    }
    if (in_function[i]) continue;
    const std::string& name = toks[i + 1].text;
    if (!toks[i + 1].is_ident || toks[i + 2].text != "(") continue;
    if (is_cpp_keyword_like(name)) continue;
    // `T name(` directly preceded by member access is a call, not a decl.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
                  toks[i - 1].text == "return" || toks[i - 1].text == "=")) {
      continue;
    }
    const bool protected_decl = has_nodiscard_before(toks, i) ||
                                corpus.nodiscard_types.count(toks[i].text) > 0;
    auto [it, inserted] = corpus.producers.emplace(name, protected_decl);
    if (!inserted) it->second = it->second || protected_decl;
    if (!protected_decl && public_header) {
      corpus.unprotected_decls.emplace_back(&file, i);
    }
  }
}

// --- per-file token rules --------------------------------------------------

using Emit = std::vector<Finding>&;

void emit(Emit out, std::string rule, const ScannedFile& file,
          std::size_t line, std::string message) {
  out.push_back({std::move(rule), file.path, line, std::move(message),
                 file.excerpt(line)});
}

bool is_call(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() && toks[i + 1].text == "(";
}

bool member_access_before(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

void rule_no_random_device(const ScannedFile& file, Emit out) {
  for (std::size_t i = 0; i < file.tokens.size(); ++i) {
    if (file.tokens[i].is_ident && file.tokens[i].text == "random_device") {
      emit(out, "no-random-device", file, file.tokens[i].line,
           "std::random_device is nondeterministic; derive a "
           "stats::Xoshiro256 stream from the run seed instead");
    }
  }
}

void rule_no_libc_rand(const ScannedFile& file, Emit out) {
  static const std::set<std::string> kBanned = {"rand", "srand", "random",
                                                "drand48", "lrand48"};
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident || kBanned.count(toks[i].text) == 0) continue;
    if (!is_call(toks, i) || member_access_before(toks, i)) continue;
    emit(out, "no-libc-rand", file, toks[i].line,
         "libc '" + toks[i].text +
             "' uses hidden global state; use the seeded per-node/per-trial "
             "RNG streams");
  }
}

// Identifier sets shared by the two clock rules: no-wall-clock bans these
// outside src/obs/ and bench/; clock-funnel confines them, within those two
// layers, to the phase_timer.hpp stopwatch.
const std::set<std::string>& clock_types() {
  static const std::set<std::string> kClockTypes = {
      "system_clock", "high_resolution_clock", "steady_clock"};
  return kClockTypes;
}
const std::set<std::string>& clock_calls() {
  static const std::set<std::string> kClockCalls = {
      "time",        "clock",     "gettimeofday", "clock_gettime",
      "localtime",   "gmtime",    "mktime",       "timespec_get"};
  return kClockCalls;
}

void rule_no_wall_clock(const ScannedFile& file, Emit out) {
  if (file.cls == FileClass::kObs || file.cls == FileClass::kBench) return;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident) continue;
    if (clock_types().count(toks[i].text) > 0) {
      emit(out, "no-wall-clock", file, toks[i].line,
           "chrono clock read outside src/obs/ and bench/: output must "
           "depend only on (seed, input), never on when it ran");
    } else if (clock_calls().count(toks[i].text) > 0 && is_call(toks, i) &&
               !member_access_before(toks, i)) {
      emit(out, "no-wall-clock", file, toks[i].line,
           "libc time call '" + toks[i].text +
               "' outside src/obs/ and bench/");
    }
  }
}

void rule_clock_funnel(const ScannedFile& file, Emit out) {
  // The layers no-wall-clock exempts still get exactly one clock source:
  // obs::StopWatch / obs::PhaseTimer in phase_timer.hpp. Everything else in
  // src/obs/ and bench/ reads time through them, so phase histograms and
  // perf figures all share one clock (and one place to fake it).
  if (file.cls != FileClass::kObs && file.cls != FileClass::kBench) return;
  if (file.path == "src/obs/include/dut/obs/phase_timer.hpp") return;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident) continue;
    if (clock_types().count(toks[i].text) > 0) {
      emit(out, "clock-funnel", file, toks[i].line,
           "direct chrono clock read in src/obs//bench/: go through "
           "obs::StopWatch / obs::PhaseTimer (dut/obs/phase_timer.hpp), the "
           "single wall-clock funnel");
    } else if (clock_calls().count(toks[i].text) > 0 && is_call(toks, i) &&
               !member_access_before(toks, i)) {
      emit(out, "clock-funnel", file, toks[i].line,
           "libc time call '" + toks[i].text +
               "' in src/obs//bench/: go through obs::StopWatch / "
               "obs::PhaseTimer (dut/obs/phase_timer.hpp)");
    }
  }
}

void rule_no_mutable_static(const ScannedFile& file, Emit out) {
  if (file.cls != FileClass::kLibrary && file.cls != FileClass::kObs) return;
  const std::vector<Token>& toks = file.tokens;
  const std::vector<bool> in_function = compute_in_function(toks);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident || toks[i].text != "static" || !in_function[i]) {
      continue;
    }
    bool exempt = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == ";" || t == "=" || t == "(" || t == "{") break;
      if (t == "const" || t == "constexpr" || t == "constinit" || t == "&" ||
          t == "&&") {
        exempt = true;
        break;
      }
    }
    if (!exempt) {
      emit(out, "no-mutable-static", file, toks[i].line,
           "mutable function-local static in library code: hidden "
           "cross-trial state breaks the bit-identical contract (const/"
           "reference latches are exempt)");
    }
  }
}

void rule_no_unordered_iteration(const ScannedFile& file, Emit out) {
  if (file.cls == FileClass::kTest) return;
  static const std::set<std::string> kBanned = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (std::size_t i = 0; i < file.tokens.size(); ++i) {
    if (file.tokens[i].is_ident && kBanned.count(file.tokens[i].text) > 0) {
      emit(out, "no-unordered-iteration", file, file.tokens[i].line,
           "'" + file.tokens[i].text +
               "' iteration order is unspecified; verdicts/traces/reports "
               "must use std::map or a sorted vector");
    }
  }
}

/// The transport layer's serialization funnel: the one .cpp that may view a
/// mapped shared-memory segment as the layout structs (see
/// ShmSession::control()). Everything else in the transport works on
/// typed records and word buffers.
bool in_transport_layer(std::string_view path) {
  return path.rfind("src/net/src/transport/", 0) == 0 ||
         path.rfind("src/net/include/dut/net/transport/", 0) == 0;
}

void rule_wire_cast_confined(const ScannedFile& file, Emit out) {
  if (file.path == "src/net/include/dut/net/message.hpp" ||
      file.path == "src/net/src/transport/shm_session.cpp") {
    return;
  }
  for (std::size_t i = 0; i < file.tokens.size(); ++i) {
    if (file.tokens[i].is_ident &&
        file.tokens[i].text == "reinterpret_cast") {
      emit(out, "wire-cast-confined", file, file.tokens[i].line,
           "reinterpret_cast outside net/message.hpp and the transport "
           "serialization funnel: wire payloads go through the "
           "declared-width field API only");
    }
  }
}

void rule_os_primitives_confined(const ScannedFile& file, Emit out) {
  if (in_transport_layer(file.path)) return;
  static const std::set<std::string> kBanned = {
      "mmap",       "munmap",     "mremap",      "mprotect",
      "shm_open",   "shm_unlink", "ftruncate",   "fork",
      "vfork",      "execv",      "execve",      "execvp",
      "waitpid",    "socket",     "socketpair",  "nanosleep",
      "usleep",     "sched_yield", "sleep_for",  "sleep_until"};
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident || kBanned.count(toks[i].text) == 0) continue;
    if (!is_call(toks, i)) continue;
    // this_thread::sleep_for / std::... qualifications still count; a
    // member call on some unrelated type's .fork() does not.
    if (member_access_before(toks, i)) continue;
    emit(out, "os-primitives-confined", file, toks[i].line,
         "OS primitive '" + toks[i].text +
             "' outside the net transport layer: protocol and library code "
             "must stay single-process and deterministic (src/net/"
             "*/transport/ owns processes, shared memory and waits)");
  }
}

void rule_bits_funnel(const ScannedFile& file, Emit out) {
  // shm_transport.cpp deserializes records whose .bits were accounted by
  // push_field on the sending rank; restoring the field from the wire is
  // not new accounting.
  if (file.path == "src/net/include/dut/net/message.hpp" ||
      file.path == "src/net/src/engine.cpp" ||
      file.path == "src/net/src/transport/shm_transport.cpp" ||
      file.path == "src/core/include/dut/core/verdict.hpp") {
    return;
  }
  static const std::set<std::string> kAssign = {"=",  "+=", "-=", "|=",
                                                "&=", "^=", "<<=", ">>="};
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident || toks[i].text != "bits") continue;
    if (!member_access_before(toks, i)) continue;
    if (kAssign.count(toks[i + 1].text) == 0) continue;
    emit(out, "bits-funnel", file, toks[i].line,
         "manual '.bits' write bypasses the push_field/Verdict::make bit "
         "accounting; size payloads through the bit-budget helpers");
  }
}

void rule_verdict_discarded(const ScannedFile& file, const Corpus& corpus,
                            Emit out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident || corpus.producers.count(toks[i].text) == 0) {
      continue;
    }
    if (!is_call(toks, i)) continue;
    if (i > 0) {
      const std::string& prev = toks[i - 1].text;
      if (prev != ";" && prev != "{" && prev != "}" && prev != ":") continue;
    }
    // Match the call's parentheses; a discarded result is immediately
    // terminated by ';'.
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
    }
    if (j + 1 < toks.size() && toks[j + 1].text == ";") {
      emit(out, "verdict-discarded", file, toks[i].line,
           "result of '" + toks[i].text +
               "' is discarded; a dropped verdict is an ignored protocol "
               "outcome (cast to (void) only with a lint suppression)");
    }
  }
}

void apply_suppressions(ScannedFile& file, std::vector<Finding>& candidates,
                        LintResult& result) {
  for (Finding& f : candidates) {
    bool covered = false;
    if (f.rule != "bad-suppression") {
      for (Suppression& s : file.suppressions) {
        if (s.rule == f.rule && s.target_line == f.line) {
          s.used = true;
          covered = true;
          result.suppressed.push_back({std::move(f), s.justification});
          break;
        }
      }
    }
    if (!covered) result.findings.push_back(std::move(f));
  }
}

}  // namespace

std::span<const RuleInfo> rule_table() { return kRules; }

bool is_known_rule(std::string_view name) {
  return find_rule_info(name) != nullptr;
}

const RuleInfo* find_rule_info(std::string_view name) {
  for (const RuleInfo& r : kRules) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

LintResult run_lint(const std::vector<ScannedFile>& files) {
  LintResult result;
  result.files_scanned = files.size();

  Corpus corpus;
  corpus.result_types.insert("Verdict");
  for (const ScannedFile& file : files) collect_types(file, corpus);
  for (const ScannedFile& file : files) collect_producers(file, corpus);

  // All semantic passes share one scratch copy of the corpus so suppression
  // and annotation bookkeeping stays per-run: the call graph is built once,
  // the census runs corpus-wide (marking used annotations), then the
  // per-file token rules run and suppressions are applied.
  std::vector<ScannedFile> scratch(files.begin(), files.end());
  const CallGraph graph = build_call_graph(scratch);
  std::map<std::string, std::vector<Finding>> census;
  run_concurrency_census(scratch, graph, census);

  for (std::size_t fi = 0; fi < scratch.size(); ++fi) {
    ScannedFile& file = scratch[fi];
    std::vector<Finding> candidates = file.scan_findings;
    rule_no_random_device(file, candidates);
    rule_no_libc_rand(file, candidates);
    rule_no_wall_clock(file, candidates);
    rule_clock_funnel(file, candidates);
    rule_no_mutable_static(file, candidates);
    rule_no_unordered_iteration(file, candidates);
    rule_wire_cast_confined(file, candidates);
    rule_os_primitives_confined(file, candidates);
    rule_bits_funnel(file, candidates);
    rule_verdict_discarded(file, corpus, candidates);
    run_taint_rules(file, graph, graph.files[fi], candidates);
    if (const auto it = census.find(file.path); it != census.end()) {
      candidates.insert(candidates.end(), it->second.begin(),
                        it->second.end());
      census.erase(it);
    }
    for (const Annotation& a : file.annotations) {
      if (a.used) continue;
      candidates.push_back(
          {"bad-suppression", file.path, a.comment_line,
           "dut-lint " + a.kind + "(" + a.arg + ") annotation covers no " +
               (a.kind == "handoff" ? std::string("atomic write to that "
                                                  "field on its line")
                                    : std::string("non-relaxed memory "
                                                  "ordering on its line")),
           file.excerpt(a.comment_line)});
    }
    for (const auto& [decl_file, tok] : corpus.unprotected_decls) {
      if (decl_file->path != file.path) continue;
      const Token& t = decl_file->tokens[tok];
      candidates.push_back(
          {"verdict-nodiscard", file.path, t.line,
           "'" + decl_file->tokens[tok + 1].text + "' returns " + t.text +
               " but is not [[nodiscard]] (and the type is not)",
           file.excerpt(t.line)});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    apply_suppressions(file, candidates, result);
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return result;
}

}  // namespace dut::lint
