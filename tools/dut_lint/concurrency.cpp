// Concurrency single-writer census (DESIGN.md §16.3). The SPSC rings and
// the sharded serve layer are correct because every shared atomic field has
// exactly one writer scope: the ring writer owns `tail`, the reader owns
// `head`, the coordinator owns the trial controls. TSan can only observe
// the schedules a test happens to run; this census proves the ownership
// discipline structurally, corpus-wide.
//
//   shared-write-outside-owner  an atomic field of a struct in the census
//     scope (src/net/ + src/serve/) is written — store / fetch_* /
//     exchange / compare_exchange — from more than one function. The
//     dominant writer (most sites) is the owner; every other site is a
//     finding unless the line carries
//     `// dut-lint: handoff(<field>): <justification>`, the sanctioned
//     escape hatch for quiescence barriers and shutdown wake-ups.
//   atomic-ordering-unjustified  a non-relaxed memory_order (acquire,
//     release, acq_rel, seq_cst, consume) in src/net/ + src/serve/ +
//     src/stats/ without `// dut-lint: ordering(<tag>): <justification>`
//     covering the line. Relaxed is the default discipline; anything
//     stronger is a protocol edge that must say why.
//
// Plain assignment (`=`) is deliberately not treated as an atomic write:
// designated initializers (`Trial{.seq = s}`) and non-atomic fields that
// happen to share a name would drown the census in false positives, and
// the repo's atomics are all written through the explicit member calls.

#include <algorithm>
#include <set>

#include "dut_lint/lint.hpp"

namespace dut::lint {

namespace {

bool census_scope(std::string_view path) {
  return path.rfind("src/net/", 0) == 0 || path.rfind("src/serve/", 0) == 0;
}

bool ordering_scope(std::string_view path) {
  return census_scope(path) || path.rfind("src/stats/", 0) == 0;
}

bool write_method(std::string_view name) {
  static const std::set<std::string, std::less<>> kWrites = {
      "store",         "exchange",      "fetch_add",
      "fetch_sub",     "fetch_or",      "fetch_and",
      "fetch_xor",     "compare_exchange_weak", "compare_exchange_strong"};
  return kWrites.count(name) > 0;
}

bool strong_order(std::string_view name) {
  return name == "acquire" || name == "release" || name == "acq_rel" ||
         name == "seq_cst" || name == "consume";
}

std::size_t match_angle(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "<") ++depth;
    if (toks[i].text == ">" && --depth == 0) return i;
  }
  return toks.size();
}

/// Collects the names of atomic data members declared inside records in
/// census-scope files: `std::atomic<T> name...;` with optional alignas
/// prefix, array suffix and brace initializer, possibly a comma list.
void collect_atomic_fields(const CallGraph& graph,
                           std::set<std::string>& fields) {
  for (const FileGraph& fg : graph.files) {
    if (fg.file == nullptr || !census_scope(fg.file->path)) continue;
    const std::vector<Token>& toks = fg.file->tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!toks[i].is_ident || toks[i].text != "atomic") continue;
      if (toks[i + 1].text != "<") continue;
      if (fg.record_of[i].empty()) continue;  // members only
      const std::size_t close = match_angle(toks, i + 1);
      if (close >= toks.size()) continue;
      // Declarators: idents directly after `>` or after a top-level `,`,
      // until the terminating `;`. Array brackets and initializers are
      // skipped by depth tracking.
      int depth = 0;
      std::string prev = ">";
      for (std::size_t j = close + 1; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == ";" && depth == 0) break;
        if (t == "[" || t == "{" || t == "(") ++depth;
        if (t == "]" || t == "}" || t == ")") --depth;
        if (depth == 0 && toks[j].is_ident && (prev == ">" || prev == ",")) {
          fields.insert(t);
        }
        if (depth == 0) prev = t;
      }
    }
  }
}

struct WriteSite {
  std::size_t file_index = 0;
  std::string field;
  std::size_t line = 0;
  int caller = -1;
};

/// The writer-scope identity of a site: the enclosing function, qualified,
/// or a file-scope pseudo-owner.
std::string scope_name(const CallGraph& graph, const WriteSite& site) {
  const FileGraph& fg = graph.files[site.file_index];
  if (site.caller < 0) {
    return fg.file->path + "::(file scope)";
  }
  const FunctionDecl& d = fg.decls[static_cast<std::size_t>(site.caller)];
  std::string name = d.qualifier.empty() ? d.name : d.qualifier + "::" + d.name;
  return d.path + "::" + name;
}

bool has_handoff(std::vector<Annotation>& annotations,
                 std::string_view field, std::size_t line) {
  bool found = false;
  for (Annotation& a : annotations) {
    if (a.kind == "handoff" && a.arg == field && a.target_line == line) {
      a.used = true;
      found = true;
    }
  }
  return found;
}

bool has_ordering(std::vector<Annotation>& annotations, std::size_t line) {
  bool found = false;
  for (Annotation& a : annotations) {
    if (a.kind == "ordering" && a.target_line == line) {
      a.used = true;
      found = true;
    }
  }
  return found;
}

void census_single_writer(std::vector<ScannedFile>& files,
                          const CallGraph& graph,
                          const std::set<std::string>& fields,
                          std::map<std::string, std::vector<Finding>>& out) {
  // field -> unannotated write sites, in scan order (deterministic).
  std::map<std::string, std::vector<WriteSite>> sites_of;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    ScannedFile& file = files[fi];
    if (!census_scope(file.path)) continue;
    const std::vector<Token>& toks = file.tokens;
    const FileGraph& fg = graph.files[fi];
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].is_ident || fields.count(toks[i].text) == 0) continue;
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "[") {  // ready[r].store(...)
        int depth = 0;
        while (j < toks.size()) {
          if (toks[j].text == "[") ++depth;
          if (toks[j].text == "]" && --depth == 0) {
            ++j;
            break;
          }
          ++j;
        }
      }
      if (j + 2 >= toks.size() || toks[j].text != ".") continue;
      if (!write_method(toks[j + 1].text) || toks[j + 2].text != "(") continue;
      if (has_handoff(file.annotations, toks[i].text, toks[i].line)) continue;
      sites_of[toks[i].text].push_back(
          WriteSite{fi, toks[i].text, toks[i].line, fg.func_of[i]});
    }
  }

  for (const auto& [field, sites] : sites_of) {
    // Count sites per writer scope; pick the dominant one as owner.
    std::map<std::string, std::size_t> count_of;
    for (const WriteSite& s : sites) ++count_of[scope_name(graph, s)];
    if (count_of.size() <= 1) continue;
    std::string owner;
    std::size_t best = 0;
    for (const WriteSite& s : sites) {  // scan order breaks ties
      const std::string name = scope_name(graph, s);
      if (count_of[name] > best) {
        best = count_of[name];
        owner = name;
      }
    }
    for (const WriteSite& s : sites) {
      const std::string name = scope_name(graph, s);
      if (name == owner) continue;
      const ScannedFile& file = files[s.file_index];
      Finding f;
      f.rule = "shared-write-outside-owner";
      f.path = file.path;
      f.line = s.line;
      f.message = "atomic field '" + field + "' written from " + name +
                  " but owned by " + owner +
                  " (" + std::to_string(best) + " writes); annotate the "
                  "handoff (`// dut-lint: handoff(" + field +
                  "): why`) or route the write through the owner";
      f.excerpt = file.excerpt(s.line);
      out[file.path].push_back(std::move(f));
    }
  }
}

void census_orderings(std::vector<ScannedFile>& files,
                      std::map<std::string, std::vector<Finding>>& out) {
  for (ScannedFile& file : files) {
    if (!ordering_scope(file.path)) continue;
    const std::vector<Token>& toks = file.tokens;
    std::size_t last_line = 0;  // one finding per line
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].is_ident) continue;
      const std::string& t = toks[i].text;
      std::string order;
      if (t.rfind("memory_order_", 0) == 0 &&
          strong_order(t.substr(13))) {
        order = t.substr(13);
      } else if (t == "memory_order" && i + 2 < toks.size() &&
                 toks[i + 1].text == "::" &&
                 strong_order(toks[i + 2].text)) {
        order = toks[i + 2].text;
      } else {
        continue;
      }
      if (toks[i].line == last_line) continue;
      if (has_ordering(file.annotations, toks[i].line)) {
        last_line = toks[i].line;
        continue;
      }
      last_line = toks[i].line;
      Finding f;
      f.rule = "atomic-ordering-unjustified";
      f.path = file.path;
      f.line = toks[i].line;
      f.message = "memory_order_" + order +
                  " without an ordering justification; add "
                  "`// dut-lint: ordering(<tag>): why` stating the "
                  "acquire/release edge this ordering establishes";
      f.excerpt = file.excerpt(toks[i].line);
      out[file.path].push_back(std::move(f));
    }
  }
}

}  // namespace

void run_concurrency_census(std::vector<ScannedFile>& files,
                            const CallGraph& graph,
                            std::map<std::string, std::vector<Finding>>& out) {
  std::set<std::string> fields;
  collect_atomic_fields(graph, fields);
  census_single_writer(files, graph, fields, out);
  census_orderings(files, out);
}

}  // namespace dut::lint
