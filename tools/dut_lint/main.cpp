// dut_lint CLI — the review-time gate (registered as the lint_repo and
// smoke_lint ctest entries).
//
//   dut_lint [--root DIR] [--baseline FILE] [--write-baseline] [--json]
//            [--list-rules] [paths...]
//
// Scans the given files/directories (default: src bench tests tools
// examples) under --root (default: cwd). Exit code 0 when every finding is
// suppressed or baselined, 1 when new findings exist, 2 on usage/IO errors.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dut_lint/lint.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: dut_lint [--root DIR] [--baseline FILE] [--write-baseline]\n"
         "                [--json] [--list-rules] [paths...]\n";
  return code;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string rel_to(const std::filesystem::path& root,
                   const std::filesystem::path& p) {
  return std::filesystem::relative(p, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dut::lint;
  std::filesystem::path root = std::filesystem::current_path();
  std::string baseline_path;
  bool write_baseline = false;
  bool json_output = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--json") {
      json_output = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_table()) {
        std::cout << r.name << "\n    " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dut_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src", "bench", "tests", "tools", "examples"};
  }

  try {
    root = std::filesystem::absolute(root);
    std::vector<ScannedFile> files;
    for (const std::filesystem::path& p : collect_sources(root, paths)) {
      files.push_back(scan_file(rel_to(root, p), read_file(p)));
    }

    const LintResult result = run_lint(files);

    std::vector<BaselineEntry> baseline;
    if (!baseline_path.empty() && !write_baseline) {
      if (std::filesystem::exists(baseline_path)) {
        baseline = parse_baseline(read_file(baseline_path));
      } else {
        std::cerr << "dut_lint: baseline file '" << baseline_path
                  << "' not found (treating as empty)\n";
      }
    }
    const BaselineDiff diff = diff_baseline(result.findings, baseline);

    if (write_baseline) {
      if (baseline_path.empty()) {
        std::cerr << "dut_lint: --write-baseline needs --baseline FILE\n";
        return 2;
      }
      std::ofstream out(baseline_path, std::ios::binary);
      out << baseline_json(result.findings);
      if (!out) {
        std::cerr << "dut_lint: cannot write " << baseline_path << "\n";
        return 2;
      }
      std::cout << "dut_lint: wrote " << result.findings.size()
                << " entries to " << baseline_path << "\n";
      return 0;
    }

    if (json_output) {
      std::cout << result_json(result, diff);
    } else {
      std::cout << human_report(result, diff);
    }
    return diff.fresh.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "dut_lint: " << e.what() << "\n";
    return 2;
  }
}
