// dut_lint CLI — the review-time gate (registered as the lint_repo,
// lint_repo_sarif and smoke_lint ctest entries).
//
//   dut_lint [--root DIR] [--baseline FILE] [--write-baseline] [--json]
//            [--sarif FILE] [--cache FILE] [--list-rules] [--explain RULE]
//            [--validate-sarif FILE] [--selftest-cache] [paths...]
//
// Scans the given files/directories (default: src bench tests tools
// examples) under --root (default: cwd). Exit code 0 when every finding is
// suppressed or baselined, 1 when new findings exist, 2 on usage/IO errors.
//
// --cache FILE consults/refreshes the incremental cache (all-or-nothing,
// see cache.cpp); --selftest-cache proves the warm path is >= 5x faster
// than cold with identical findings, which lint_cache_selftest gates.
// --validate-sarif FILE structurally checks a SARIF 2.1.0 log and exits.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dut/obs/phase_timer.hpp"
#include "dut_lint/lint.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: dut_lint [--root DIR] [--baseline FILE] [--write-baseline]\n"
         "                [--json] [--sarif FILE] [--cache FILE]\n"
         "                [--list-rules] [--explain RULE]\n"
         "                [--validate-sarif FILE] [--selftest-cache]\n"
         "                [paths...]\n";
  return code;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string rel_to(const std::filesystem::path& root,
                   const std::filesystem::path& p) {
  return std::filesystem::relative(p, root).generic_string();
}

int explain_rule(const std::string& name) {
  using dut::lint::RuleInfo;
  const RuleInfo* info = dut::lint::find_rule_info(name);
  if (info == nullptr) {
    std::cerr << "dut_lint: unknown rule '" << name
              << "' (see --list-rules)\n";
    return 2;
  }
  std::cout << info->name << "\n\n  what:      " << info->summary
            << "\n  protects:  " << info->guarantee
            << "\n  reference: " << info->design_ref << "\n";
  return 0;
}

int validate_sarif_file(const std::string& path) {
  const std::vector<std::string> errors =
      dut::lint::sarif_validate(read_file(path));
  for (const std::string& e : errors) {
    std::cerr << "dut_lint: sarif: " << e << "\n";
  }
  if (errors.empty()) {
    std::cout << "dut_lint: " << path << " is structurally valid SARIF "
              << "2.1.0\n";
    return 0;
  }
  std::cerr << "dut_lint: " << path << ": " << errors.size()
            << " schema violation" << (errors.size() == 1 ? "" : "s") << "\n";
  return 1;
}

/// Cold-vs-warm cache benchmark over the already-loaded sources. Each mode
/// runs twice and takes the faster run, which irons out first-touch noise.
int selftest_cache(const std::vector<dut::lint::SourceText>& sources,
                   const std::string& cache_path) {
  using dut::lint::CacheStats;
  using dut::lint::LintResult;
  namespace fs = std::filesystem;

  const auto timed_run = [&](bool cold, CacheStats& stats,
                             LintResult& result) {
    double best = 1e30;
    for (int iter = 0; iter < 2; ++iter) {
      if (cold) fs::remove(cache_path);
      const dut::obs::StopWatch watch;
      result = dut::lint::lint_corpus_cached(sources, cache_path, &stats);
      best = std::min(best, watch.seconds());
    }
    return best;
  };

  CacheStats cold_stats, warm_stats;
  LintResult cold_result, warm_result;
  const double cold = timed_run(true, cold_stats, cold_result);
  const double warm = timed_run(false, warm_stats, warm_result);

  const auto signature = [](const LintResult& r) {
    return dut::lint::result_json(
        r, dut::lint::diff_baseline(r.findings, {}));
  };

  bool ok = true;
  if (!cold_stats.full_scan || cold_stats.hits != 0) {
    std::cerr << "selftest: cold run unexpectedly hit the cache\n";
    ok = false;
  }
  if (warm_stats.full_scan || warm_stats.misses != 0 ||
      warm_stats.hits != sources.size()) {
    std::cerr << "selftest: warm run was not a pure cache hit (hits="
              << warm_stats.hits << " misses=" << warm_stats.misses << ")\n";
    ok = false;
  }
  if (signature(cold_result) != signature(warm_result)) {
    std::cerr << "selftest: warm findings differ from cold findings\n";
    ok = false;
  }
  if (warm * 5.0 > cold) {
    std::cerr << "selftest: warm run not >=5x faster than cold\n";
    ok = false;
  }
  std::printf(
      "dut_lint cache selftest: cold %.3fs (%zu files), warm %.3fs "
      "(%.1fx), findings %zu — %s\n",
      cold, sources.size(), warm, warm > 0 ? cold / warm : 0.0,
      cold_result.findings.size(), ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dut::lint;
  std::filesystem::path root = std::filesystem::current_path();
  std::string baseline_path;
  std::string sarif_path;
  std::string cache_path;
  std::string validate_path;
  std::string explain;
  bool write_baseline = false;
  bool json_output = false;
  bool run_selftest = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--validate-sarif" && i + 1 < argc) {
      validate_path = argv[++i];
    } else if (arg == "--explain" && i + 1 < argc) {
      explain = argv[++i];
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--json") {
      json_output = true;
    } else if (arg == "--selftest-cache") {
      run_selftest = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_table()) {
        std::cout << r.name << "\n    " << r.summary << "\n    -> "
                  << r.design_ref << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dut_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src", "bench", "tests", "tools", "examples"};
  }

  try {
    if (!explain.empty()) return explain_rule(explain);
    if (!validate_path.empty()) return validate_sarif_file(validate_path);

    root = std::filesystem::absolute(root);
    std::vector<SourceText> sources;
    for (const std::filesystem::path& p : collect_sources(root, paths)) {
      sources.push_back({rel_to(root, p), read_file(p)});
    }

    if (run_selftest) {
      if (cache_path.empty()) {
        std::cerr << "dut_lint: --selftest-cache needs --cache FILE\n";
        return 2;
      }
      return selftest_cache(sources, cache_path);
    }

    CacheStats cache_stats;
    const LintResult result =
        lint_corpus_cached(sources, cache_path, &cache_stats);

    std::vector<BaselineEntry> baseline;
    if (!baseline_path.empty() && !write_baseline) {
      if (std::filesystem::exists(baseline_path)) {
        baseline = parse_baseline(read_file(baseline_path));
      } else {
        std::cerr << "dut_lint: baseline file '" << baseline_path
                  << "' not found (treating as empty)\n";
      }
    }
    const BaselineDiff diff = diff_baseline(result.findings, baseline);

    if (write_baseline) {
      if (baseline_path.empty()) {
        std::cerr << "dut_lint: --write-baseline needs --baseline FILE\n";
        return 2;
      }
      // Stale entries in the previous baseline are pruned by construction
      // (the file is rewritten from live findings); count them for the log.
      std::size_t pruned = 0;
      if (std::filesystem::exists(baseline_path)) {
        const auto old = parse_baseline(read_file(baseline_path));
        pruned = diff_baseline(result.findings, old).stale.size();
      }
      std::vector<BaselineEntry> refused;
      const std::vector<Finding> eligible =
          baselineable_findings(result, &refused);
      std::ofstream out(baseline_path, std::ios::binary);
      out << baseline_json(eligible);
      if (!out) {
        std::cerr << "dut_lint: cannot write " << baseline_path << "\n";
        return 2;
      }
      for (const BaselineEntry& r : refused) {
        std::cerr << "dut_lint: refused baseline entry [" << r.rule << "] "
                  << r.path << " '" << r.excerpt
                  << "': a suppressed finding shares this key (fix or widen "
                     "the suppression instead of baselining)\n";
      }
      std::cout << "dut_lint: wrote " << eligible.size() << " entries to "
                << baseline_path << " (" << refused.size() << " refused, "
                << pruned << " stale pruned)\n";
      return 0;
    }

    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path, std::ios::binary);
      out << sarif_report(result, diff);
      if (!out) {
        std::cerr << "dut_lint: cannot write " << sarif_path << "\n";
        return 2;
      }
    }

    if (json_output) {
      std::cout << result_json(result, diff);
    } else {
      std::cout << human_report(result, diff);
      if (!cache_path.empty()) {
        std::cout << "dut_lint: cache " << (cache_stats.full_scan
                                                ? "cold"
                                                : "warm")
                  << " (" << cache_stats.hits << " hits, "
                  << cache_stats.misses << " misses"
                  << (cache_stats.corrupt ? ", corrupt cache rebuilt" : "")
                  << ")\n";
      }
    }
    return diff.fresh.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "dut_lint: " << e.what() << "\n";
    return 2;
  }
}
