// SARIF 2.1.0 emission + structural validation (DESIGN.md §16.4). One run,
// the full rule table published as tool.driver.rules so viewers can render
// help for every rule (not just the ones that fired), and the baseline
// state mapped onto SARIF's own suppression model: a finding covered by the
// checked-in baseline carries {"kind": "external"}, an in-source
// `dut-lint: allow(...)` carries {"kind": "inSource"} with the
// justification, and only fresh findings arrive unsuppressed at level
// "error" — exactly the findings that fail the gate.
//
// sarif_validate() is the lint_repo_sarif gate's checker: the container has
// no external JSON-Schema tool, so it structurally validates the 2.1.0
// subset dut_lint emits (and that any conformant producer of this subset
// would emit): version/$schema, runs[].tool.driver shape, rule-index
// cross-references, result levels, location uri/region types.

#include <algorithm>
#include <set>

#include "dut/obs/json.hpp"
#include "dut_lint/lint.hpp"

namespace dut::lint {

namespace {

constexpr std::string_view kSarifVersion = "2.1.0";
constexpr std::string_view kSarifSchema =
    "https://json.schemastore.org/sarif-2.1.0.json";

obs::Json location_of(const Finding& f) {
  obs::Json physical = obs::Json::object();
  obs::Json artifact = obs::Json::object();
  artifact.set("uri", f.path);
  physical.set("artifactLocation", std::move(artifact));
  if (f.line > 0) {
    obs::Json region = obs::Json::object();
    region.set("startLine", static_cast<std::uint64_t>(f.line));
    physical.set("region", std::move(region));
  }
  obs::Json location = obs::Json::object();
  location.set("physicalLocation", std::move(physical));
  obs::Json locations = obs::Json::array();
  locations.push(std::move(location));
  return locations;
}

obs::Json result_of(const Finding& f, std::size_t rule_index,
                    const char* level) {
  obs::Json result = obs::Json::object();
  result.set("ruleId", f.rule);
  result.set("ruleIndex", static_cast<std::uint64_t>(rule_index));
  result.set("level", level);
  obs::Json message = obs::Json::object();
  message.set("text", f.message);
  result.set("message", std::move(message));
  result.set("locations", location_of(f));
  return result;
}

obs::Json suppression_of(const char* kind, const std::string* justification) {
  obs::Json sup = obs::Json::object();
  sup.set("kind", kind);
  if (justification != nullptr && !justification->empty()) {
    sup.set("justification", *justification);
  }
  obs::Json sups = obs::Json::array();
  sups.push(std::move(sup));
  return sups;
}

std::size_t rule_index_of(std::string_view rule) {
  const auto table = rule_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i].name == rule) return i;
  }
  return 0;  // unreachable for findings produced by this tool
}

}  // namespace

std::string sarif_report(const LintResult& result, const BaselineDiff& diff) {
  obs::Json driver = obs::Json::object();
  driver.set("name", "dut_lint");
  driver.set("informationUri", "DESIGN.md");
  driver.set("version", "2");
  obs::Json rules = obs::Json::array();
  for (const RuleInfo& info : rule_table()) {
    obs::Json rule = obs::Json::object();
    rule.set("id", std::string(info.name));
    obs::Json short_desc = obs::Json::object();
    short_desc.set("text", std::string(info.summary));
    rule.set("shortDescription", std::move(short_desc));
    obs::Json full_desc = obs::Json::object();
    full_desc.set("text",
                  std::string(info.guarantee) + " (" +
                      std::string(info.design_ref) + ")");
    rule.set("fullDescription", std::move(full_desc));
    rules.push(std::move(rule));
  }
  driver.set("rules", std::move(rules));

  // Fresh findings are gate failures; baselined ones are externally
  // suppressed; in-source allow() directives are inSource suppressions.
  // diff.fresh holds copies, so match by the baseline key, multiset-style.
  std::multiset<std::string> fresh_keys;
  for (const Finding& f : diff.fresh) {
    fresh_keys.insert(f.rule + "\n" + f.path + "\n" + f.excerpt);
  }

  obs::Json results = obs::Json::array();
  for (const Finding& f : result.findings) {
    const std::string key = f.rule + "\n" + f.path + "\n" + f.excerpt;
    obs::Json entry = result_of(f, rule_index_of(f.rule), "error");
    auto it = fresh_keys.find(key);
    if (it != fresh_keys.end()) {
      fresh_keys.erase(it);  // fresh: unsuppressed
    } else {
      entry.set("suppressions", suppression_of("external", nullptr));
    }
    results.push(std::move(entry));
  }
  for (const SuppressedFinding& s : result.suppressed) {
    obs::Json entry = result_of(s.finding, rule_index_of(s.finding.rule),
                                "note");
    entry.set("suppressions", suppression_of("inSource", &s.justification));
    results.push(std::move(entry));
  }

  obs::Json tool = obs::Json::object();
  tool.set("driver", std::move(driver));
  obs::Json run = obs::Json::object();
  run.set("tool", std::move(tool));
  run.set("columnKind", "utf16CodeUnits");
  run.set("results", std::move(results));
  obs::Json runs = obs::Json::array();
  runs.push(std::move(run));

  obs::Json root = obs::Json::object();
  root.set("$schema", std::string(kSarifSchema));
  root.set("version", std::string(kSarifVersion));
  root.set("runs", std::move(runs));
  return root.dump(2) + "\n";
}

std::vector<std::string> sarif_validate(std::string_view json_text) {
  std::vector<std::string> errors;
  const obs::Json root = obs::Json::parse(json_text);
  const auto fail = [&errors](std::string msg) {
    errors.push_back(std::move(msg));
  };

  if (!root.is_object()) {
    fail("root is not an object");
    return errors;
  }
  const obs::Json* version = root.get("version");
  if (version == nullptr || !version->is_string() ||
      version->as_string() != kSarifVersion) {
    fail("version must be the string \"2.1.0\"");
  }
  const obs::Json* runs = root.get("runs");
  if (runs == nullptr || !runs->is_array()) {
    fail("runs must be an array");
    return errors;
  }
  for (std::size_t r = 0; r < runs->size(); ++r) {
    const obs::Json& run = runs->at(r);
    const std::string where = "runs[" + std::to_string(r) + "]";
    if (!run.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    const obs::Json* tool = run.get("tool");
    const obs::Json* driver =
        tool != nullptr && tool->is_object() ? tool->get("driver") : nullptr;
    if (driver == nullptr || !driver->is_object()) {
      fail(where + ".tool.driver missing");
      continue;
    }
    const obs::Json* name = driver->get("name");
    if (name == nullptr || !name->is_string()) {
      fail(where + ".tool.driver.name must be a string");
    }
    std::size_t rule_count = 0;
    std::set<std::string> rule_ids;
    std::vector<std::string> rule_order;
    if (const obs::Json* rules = driver->get("rules")) {
      if (!rules->is_array()) {
        fail(where + ".tool.driver.rules must be an array");
      } else {
        rule_count = rules->size();
        for (std::size_t i = 0; i < rules->size(); ++i) {
          const obs::Json& rule = rules->at(i);
          const obs::Json* id =
              rule.is_object() ? rule.get("id") : nullptr;
          if (id == nullptr || !id->is_string()) {
            fail(where + ".tool.driver.rules[" + std::to_string(i) +
                 "].id must be a string");
            rule_order.emplace_back();
          } else {
            rule_ids.insert(id->as_string());
            rule_order.push_back(id->as_string());
          }
        }
      }
    }
    const obs::Json* results = run.get("results");
    if (results == nullptr || !results->is_array()) {
      fail(where + ".results must be an array");
      continue;
    }
    for (std::size_t i = 0; i < results->size(); ++i) {
      const obs::Json& res = results->at(i);
      const std::string rwhere = where + ".results[" + std::to_string(i) + "]";
      if (!res.is_object()) {
        fail(rwhere + " is not an object");
        continue;
      }
      const obs::Json* rule_id = res.get("ruleId");
      if (rule_id == nullptr || !rule_id->is_string()) {
        fail(rwhere + ".ruleId must be a string");
      } else if (rule_count > 0 && rule_ids.count(rule_id->as_string()) == 0) {
        fail(rwhere + ".ruleId \"" + rule_id->as_string() +
             "\" not in tool.driver.rules");
      }
      if (const obs::Json* rule_index = res.get("ruleIndex")) {
        if (!rule_index->is_number()) {
          fail(rwhere + ".ruleIndex must be a number");
        } else if (rule_index->as_u64() >= rule_count) {
          fail(rwhere + ".ruleIndex out of range");
        } else if (rule_id != nullptr && rule_id->is_string() &&
                   rule_order[rule_index->as_u64()] != rule_id->as_string()) {
          fail(rwhere + ".ruleIndex does not match ruleId");
        }
      }
      if (const obs::Json* level = res.get("level")) {
        static const std::set<std::string> kLevels = {"none", "note",
                                                      "warning", "error"};
        if (!level->is_string() || kLevels.count(level->as_string()) == 0) {
          fail(rwhere + ".level must be none|note|warning|error");
        }
      }
      const obs::Json* message = res.get("message");
      const obs::Json* text =
          message != nullptr && message->is_object() ? message->get("text")
                                                     : nullptr;
      if (text == nullptr || !text->is_string()) {
        fail(rwhere + ".message.text must be a string");
      }
      if (const obs::Json* locations = res.get("locations")) {
        if (!locations->is_array()) {
          fail(rwhere + ".locations must be an array");
        } else {
          for (std::size_t l = 0; l < locations->size(); ++l) {
            const obs::Json& loc = locations->at(l);
            const obs::Json* physical =
                loc.is_object() ? loc.get("physicalLocation") : nullptr;
            const obs::Json* artifact =
                physical != nullptr && physical->is_object()
                    ? physical->get("artifactLocation")
                    : nullptr;
            const obs::Json* uri =
                artifact != nullptr && artifact->is_object()
                    ? artifact->get("uri")
                    : nullptr;
            if (uri == nullptr || !uri->is_string()) {
              fail(rwhere + ".locations[" + std::to_string(l) +
                   "].physicalLocation.artifactLocation.uri must be a string");
            }
            const obs::Json* region =
                physical != nullptr && physical->is_object()
                    ? physical->get("region")
                    : nullptr;
            if (region != nullptr) {
              const obs::Json* start = region->get("startLine");
              if (start == nullptr || !start->is_number() ||
                  start->as_u64() == 0) {
                fail(rwhere + ".locations[" + std::to_string(l) +
                     "].physicalLocation.region.startLine must be >= 1");
              }
            }
          }
        }
      }
      if (const obs::Json* sups = res.get("suppressions")) {
        if (!sups->is_array()) {
          fail(rwhere + ".suppressions must be an array");
        } else {
          for (std::size_t s = 0; s < sups->size(); ++s) {
            const obs::Json& sup = sups->at(s);
            const obs::Json* kind =
                sup.is_object() ? sup.get("kind") : nullptr;
            if (kind == nullptr || !kind->is_string() ||
                (kind->as_string() != "inSource" &&
                 kind->as_string() != "external")) {
              fail(rwhere + ".suppressions[" + std::to_string(s) +
                   "].kind must be inSource|external");
            }
          }
        }
      }
    }
  }
  return errors;
}

}  // namespace dut::lint
