#pragma once

// dut_lint: the repo-native determinism & protocol-safety static checker
// (DESIGN.md §12).
//
// Every guarantee this reproduction makes — bit-identical Monte-Carlo sweeps
// at any DUT_THREADS, CONGEST messages bounded through the declared-width
// bit-budget, reject-biased fault handling — depends on source-level
// disciplines that no runtime test can prove exhaustively. dut_lint checks
// them at review time with a token/decl-level scanner (comments and string
// literals are scrubbed before any rule runs, so rules only ever see code):
//
//  D-rules (determinism):
//    no-random-device        std::random_device anywhere
//    no-libc-rand            rand()/srand()/random()/drand48() calls
//    no-wall-clock           wall-clock reads outside src/obs/ and bench/
//    clock-funnel            wall-clock reads inside src/obs/ and bench/
//                            outside the obs::PhaseTimer/StopWatch funnel
//                            (dut/obs/phase_timer.hpp)
//    no-mutable-static       mutable function-local statics in src/
//    no-unordered-iteration  unordered containers outside tests/
//    seed-unkeyed-derivation RNG state built from a bare seed outside the
//                            blessed derivation funnels (no trial/round/
//                            edge/stream keying)
//    seed-escapes-funnel     a bare seed forwarded into a callee parameter
//                            that is not itself a seed (cross-TU, via the
//                            declaration call graph)
//    merge-not-rank-ordered  verdict/metrics/budget merge loop iterating in
//                            a non-ascending (reversed) order
//  P-rules (protocol safety):
//    wire-cast-confined      reinterpret_cast outside net/message.hpp
//    bits-funnel             manual writes to a `.bits` member outside the
//                            push_field/Verdict::make funnels
//    verdict-nodiscard       verdict-returning public API missing
//                            [[nodiscard]]
//    verdict-discarded       verdict-returning call discarded at statement
//                            position
//    shared-write-outside-owner
//                            an atomic field of a shared transport/serve
//                            struct written from more than one function
//                            without a handoff annotation
//    atomic-ordering-unjustified
//                            a non-relaxed memory_order without an
//                            ordering justification comment
//  and the meta rule bad-suppression for malformed directives.
//
// Suppression: `// dut-lint: allow(<rule>): <justification>` on the finding
// line (or alone on the line above it). The justification is mandatory and
// must be at least 8 characters; bad-suppression findings cannot themselves
// be suppressed. A checked-in baseline (tools/dut_lint/baseline.json) lets
// the gate fail only on *new* findings while legacy ones are burned down.
//
// Two further directive kinds feed the concurrency census rather than
// suppressing findings:
//   `// dut-lint: handoff(<field>): <justification>`  sanctions an atomic
//     write outside the owning function (quiescence barriers, shutdown
//     wake-ups); the annotated line's writes leave the single-writer census.
//   `// dut-lint: ordering(<tag>): <justification>`   justifies the
//     non-relaxed memory orderings on the covered line.
// Both use the allow() placement rules and both are bad-suppression
// findings when they cover nothing.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dut::lint {

/// Path-derived rule scope. The distinction matters because several rules
/// apply only to library code (src/) or exempt the observability and bench
/// layers, whose whole job is reading clocks.
enum class FileClass { kLibrary, kObs, kBench, kTest, kTool, kExample, kOther };

/// Classifies a repo-relative, '/'-separated path.
FileClass classify_path(std::string_view rel_path);

/// One lexical token of scrubbed code. Multi-character operators that rules
/// care about (::, ->, ==, +=, ...) arrive merged as single tokens.
struct Token {
  std::string text;
  std::size_t line = 0;  ///< 1-based source line
  bool is_ident = false;
};

struct Finding {
  std::string rule;
  std::string path;
  std::size_t line = 0;  ///< 1-based; 0 for file-level findings
  std::string message;
  std::string excerpt;  ///< trimmed raw source line
};

/// A parsed `// dut-lint: allow(rule): justification` comment.
struct Suppression {
  std::string rule;
  std::string justification;
  std::size_t target_line = 0;  ///< line whose findings it covers
  bool used = false;
};

/// A parsed `// dut-lint: handoff(field): ...` or `ordering(tag): ...`
/// annotation. Unlike a Suppression it does not silence a finding — it is
/// an input to the concurrency census (and unused annotations are findings).
struct Annotation {
  std::string kind;  ///< "handoff" or "ordering"
  std::string arg;   ///< field name (handoff) or free tag (ordering)
  std::string justification;
  std::size_t target_line = 0;
  std::size_t comment_line = 0;  ///< where the directive itself sits
  bool used = false;
};

struct ScannedFile {
  std::string path;
  FileClass cls = FileClass::kOther;
  std::vector<std::string> raw_lines;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<Annotation> annotations;
  /// Findings produced during scanning itself (bad-suppression).
  std::vector<Finding> scan_findings;

  /// Trimmed raw source line (1-based; empty when out of range).
  std::string excerpt(std::size_t line) const;
};

/// Scrubs comments/literals, tokenizes, and parses suppression comments.
/// `rel_path` decides the FileClass; `text` is the file contents.
ScannedFile scan_file(std::string rel_path, std::string_view text);

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
  /// DESIGN.md anchor for `--explain` ("DESIGN.md §16.2").
  std::string_view design_ref;
  /// The paper/system guarantee the rule protects, one sentence.
  std::string_view guarantee;
};
std::span<const RuleInfo> rule_table();
bool is_known_rule(std::string_view name);
/// nullptr when unknown.
const RuleInfo* find_rule_info(std::string_view name);

// --- Declaration-level call graph (graph.cpp) ------------------------------
// Built once per corpus; feeds the cross-TU seed-flow pass and the
// concurrency census (writer scopes are function declarations).

struct FunctionDecl {
  std::string name;       ///< unqualified ("begin_trial")
  std::string qualifier;  ///< enclosing class or A::B prefix ("" when free)
  std::string path;
  std::size_t line = 0;
  /// Parameter names by position; "" when the declaration omits the name.
  std::vector<std::string> params;
  bool is_definition = false;
};

struct CallSite {
  std::string callee;
  std::size_t token_index = 0;  ///< index of the callee identifier
  std::size_t line = 0;
  int caller = -1;  ///< index into FileGraph::decls, -1 at namespace scope
  /// Top-level argument token ranges [begin, end) inside the call parens.
  std::vector<std::pair<std::size_t, std::size_t>> args;
};

/// Per-file slice of the graph. `func_of[i]` is the index (into decls) of
/// the function definition whose body contains token i, or -1; `record_of`
/// is the innermost struct/class/union name enclosing token i ("" outside).
struct FileGraph {
  const ScannedFile* file = nullptr;
  std::vector<FunctionDecl> decls;
  std::vector<CallSite> calls;
  std::vector<int> func_of;
  std::vector<std::string> record_of;
};

struct CallGraph {
  std::vector<FileGraph> files;  ///< parallel to the scanned corpus
  /// Every declaration/definition of a given unqualified name, corpus-wide.
  std::map<std::string, std::vector<const FunctionDecl*>, std::less<>> by_name;
};

CallGraph build_call_graph(const std::vector<ScannedFile>& files);

// --- Rule passes implemented outside rules.cpp -----------------------------

/// Seed-flow taint pass (taint.cpp): seed-unkeyed-derivation,
/// seed-escapes-funnel and merge-not-rank-ordered over one file, using the
/// corpus-wide graph for cross-TU parameter lookups.
void run_taint_rules(const ScannedFile& file, const CallGraph& graph,
                     const FileGraph& fg, std::vector<Finding>& out);

/// Concurrency single-writer census (concurrency.cpp). Runs corpus-wide:
/// collects the atomic fields of shared structs in the census scope
/// (src/net transport + src/serve), then checks one writer function per
/// field (handoff-annotated lines exempt) and ordering justifications.
/// Marks used annotations in `files`; run_lint flushes unused-annotation
/// findings afterwards. Emits findings keyed by file path into `out`.
void run_concurrency_census(std::vector<ScannedFile>& files,
                            const CallGraph& graph,
                            std::map<std::string, std::vector<Finding>>& out);

struct SuppressedFinding {
  Finding finding;
  std::string justification;
};

struct LintResult {
  std::vector<Finding> findings;  ///< active, i.e. not suppressed
  std::vector<SuppressedFinding> suppressed;
  std::size_t files_scanned = 0;
};

/// Runs every rule over the corpus. Two passes: declarations first (result
/// types and their producers feed the verdict rules), then the per-file
/// token rules, with suppressions applied at the end. Findings are ordered
/// by (path, line, rule) so output is deterministic.
LintResult run_lint(const std::vector<ScannedFile>& files);

/// Walks `rel_paths` (files or directories) under `root` and returns every
/// C++ source (.hpp/.h/.cpp/.cc), sorted. Directories named "fixtures" and
/// build trees (build*, CMakeFiles, .git, Testing) are skipped so lint
/// fixtures with intentional violations never leak into the repo gate.
std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root, const std::vector<std::string>& rel_paths);

// --- Baseline -------------------------------------------------------------
// Entries match findings by (rule, path, excerpt) — line numbers are
// excluded so unrelated edits in the same file do not invalidate the
// baseline. Matching is multiset-style: one entry covers one finding.

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::string excerpt;
};

struct BaselineDiff {
  std::vector<Finding> fresh;        ///< findings not covered by the baseline
  std::vector<BaselineEntry> stale;  ///< entries that matched nothing
  std::size_t matched = 0;
};

/// Parses a baseline document; throws std::runtime_error on malformed JSON
/// or a version other than 1.
std::vector<BaselineEntry> parse_baseline(std::string_view json_text);

/// Serializes `findings` as a fresh baseline document (schema version 1).
std::string baseline_json(const std::vector<Finding>& findings);

BaselineDiff diff_baseline(const std::vector<Finding>& findings,
                           const std::vector<BaselineEntry>& baseline);

/// Machine-readable report (schema version 1; see tests/lint for the shape).
std::string result_json(const LintResult& result, const BaselineDiff& diff);

/// Human-readable report; the gate's stdout.
std::string human_report(const LintResult& result, const BaselineDiff& diff);

/// Findings eligible for `--write-baseline`: drops entries whose
/// (rule, path, excerpt) key collides with an in-source suppressed finding.
/// Baseline matching cannot tell the two sites apart, so such an entry
/// would double-book the suppressed site forever once the active one is
/// fixed. Skipped keys (one per finding) land in `refused` when non-null.
std::vector<Finding> baselineable_findings(
    const LintResult& result, std::vector<BaselineEntry>* refused);

// --- SARIF 2.1.0 (sarif.cpp) ----------------------------------------------

/// Serializes the run as a SARIF 2.1.0 log: one run, the full rule table as
/// tool.driver.rules, fresh findings at level "error", baselined findings
/// carrying an "external" suppression and in-source-suppressed ones an
/// "inSource" suppression with the justification.
std::string sarif_report(const LintResult& result, const BaselineDiff& diff);

/// Structural validation against the SARIF 2.1.0 schema subset dut_lint
/// emits (version string, run/tool/driver shape, rule references, result
/// levels, location uris/regions). Returns human-readable violations;
/// empty means valid. Throws std::runtime_error on malformed JSON.
std::vector<std::string> sarif_validate(std::string_view json_text);

// --- Incremental cache (cache.cpp) ----------------------------------------
// Entries are keyed by (file content hash, rule-set hash). Because several
// passes are cross-TU (verdict producers, seed taint, the census), any
// stale file downgrades the run to a full rescan — per-file reuse of
// findings would be unsound when another file's declarations changed. The
// warm path (nothing changed) skips scrubbing, tokenization and every rule.

/// FNV-1a 64-bit; the cache's content hash.
std::uint64_t fnv1a64(std::string_view bytes);

/// Hash over the rule table (names + summaries + cache schema version):
/// any rule change invalidates every cache entry.
std::uint64_t ruleset_hash();

struct CacheStats {
  std::size_t hits = 0;    ///< files whose content hash matched the cache
  std::size_t misses = 0;  ///< changed, added (or removed) files
  bool full_scan = true;   ///< rules actually ran (any miss forces this)
  bool corrupt = false;    ///< cache file was unreadable; fell back cleanly
};

/// One source file handed to the cached entry point.
struct SourceText {
  std::string rel_path;
  std::string contents;
};

/// Runs the full lint over `sources`, consulting/refreshing the cache at
/// `cache_path` (empty path disables caching entirely). On a warm hit the
/// cached LintResult is returned verbatim; otherwise scans everything and
/// rewrites the cache (best-effort; write failures never fail the lint).
LintResult lint_corpus_cached(const std::vector<SourceText>& sources,
                              const std::string& cache_path,
                              CacheStats* stats);

}  // namespace dut::lint
