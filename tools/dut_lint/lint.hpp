#pragma once

// dut_lint: the repo-native determinism & protocol-safety static checker
// (DESIGN.md §12).
//
// Every guarantee this reproduction makes — bit-identical Monte-Carlo sweeps
// at any DUT_THREADS, CONGEST messages bounded through the declared-width
// bit-budget, reject-biased fault handling — depends on source-level
// disciplines that no runtime test can prove exhaustively. dut_lint checks
// them at review time with a token/decl-level scanner (comments and string
// literals are scrubbed before any rule runs, so rules only ever see code):
//
//  D-rules (determinism):
//    no-random-device        std::random_device anywhere
//    no-libc-rand            rand()/srand()/random()/drand48() calls
//    no-wall-clock           wall-clock reads outside src/obs/ and bench/
//    clock-funnel            wall-clock reads inside src/obs/ and bench/
//                            outside the obs::PhaseTimer/StopWatch funnel
//                            (dut/obs/phase_timer.hpp)
//    no-mutable-static       mutable function-local statics in src/
//    no-unordered-iteration  unordered containers outside tests/
//  P-rules (protocol safety):
//    wire-cast-confined      reinterpret_cast outside net/message.hpp
//    bits-funnel             manual writes to a `.bits` member outside the
//                            push_field/Verdict::make funnels
//    verdict-nodiscard       verdict-returning public API missing
//                            [[nodiscard]]
//    verdict-discarded       verdict-returning call discarded at statement
//                            position
//  and the meta rule bad-suppression for malformed allow comments.
//
// Suppression: `// dut-lint: allow(<rule>): <justification>` on the finding
// line (or alone on the line above it). The justification is mandatory and
// must be at least 8 characters; bad-suppression findings cannot themselves
// be suppressed. A checked-in baseline (tools/dut_lint/baseline.json) lets
// the gate fail only on *new* findings while legacy ones are burned down.

#include <cstddef>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dut::lint {

/// Path-derived rule scope. The distinction matters because several rules
/// apply only to library code (src/) or exempt the observability and bench
/// layers, whose whole job is reading clocks.
enum class FileClass { kLibrary, kObs, kBench, kTest, kTool, kExample, kOther };

/// Classifies a repo-relative, '/'-separated path.
FileClass classify_path(std::string_view rel_path);

/// One lexical token of scrubbed code. Multi-character operators that rules
/// care about (::, ->, ==, +=, ...) arrive merged as single tokens.
struct Token {
  std::string text;
  std::size_t line = 0;  ///< 1-based source line
  bool is_ident = false;
};

struct Finding {
  std::string rule;
  std::string path;
  std::size_t line = 0;  ///< 1-based; 0 for file-level findings
  std::string message;
  std::string excerpt;  ///< trimmed raw source line
};

/// A parsed `// dut-lint: allow(rule): justification` comment.
struct Suppression {
  std::string rule;
  std::string justification;
  std::size_t target_line = 0;  ///< line whose findings it covers
  bool used = false;
};

struct ScannedFile {
  std::string path;
  FileClass cls = FileClass::kOther;
  std::vector<std::string> raw_lines;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  /// Findings produced during scanning itself (bad-suppression).
  std::vector<Finding> scan_findings;

  /// Trimmed raw source line (1-based; empty when out of range).
  std::string excerpt(std::size_t line) const;
};

/// Scrubs comments/literals, tokenizes, and parses suppression comments.
/// `rel_path` decides the FileClass; `text` is the file contents.
ScannedFile scan_file(std::string rel_path, std::string_view text);

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};
std::span<const RuleInfo> rule_table();
bool is_known_rule(std::string_view name);

struct SuppressedFinding {
  Finding finding;
  std::string justification;
};

struct LintResult {
  std::vector<Finding> findings;  ///< active, i.e. not suppressed
  std::vector<SuppressedFinding> suppressed;
  std::size_t files_scanned = 0;
};

/// Runs every rule over the corpus. Two passes: declarations first (result
/// types and their producers feed the verdict rules), then the per-file
/// token rules, with suppressions applied at the end. Findings are ordered
/// by (path, line, rule) so output is deterministic.
LintResult run_lint(const std::vector<ScannedFile>& files);

/// Walks `rel_paths` (files or directories) under `root` and returns every
/// C++ source (.hpp/.h/.cpp/.cc), sorted. Directories named "fixtures" and
/// build trees (build*, CMakeFiles, .git, Testing) are skipped so lint
/// fixtures with intentional violations never leak into the repo gate.
std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root, const std::vector<std::string>& rel_paths);

// --- Baseline -------------------------------------------------------------
// Entries match findings by (rule, path, excerpt) — line numbers are
// excluded so unrelated edits in the same file do not invalidate the
// baseline. Matching is multiset-style: one entry covers one finding.

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::string excerpt;
};

struct BaselineDiff {
  std::vector<Finding> fresh;        ///< findings not covered by the baseline
  std::vector<BaselineEntry> stale;  ///< entries that matched nothing
  std::size_t matched = 0;
};

/// Parses a baseline document; throws std::runtime_error on malformed JSON
/// or a version other than 1.
std::vector<BaselineEntry> parse_baseline(std::string_view json_text);

/// Serializes `findings` as a fresh baseline document (schema version 1).
std::string baseline_json(const std::vector<Finding>& findings);

BaselineDiff diff_baseline(const std::vector<Finding>& findings,
                           const std::vector<BaselineEntry>& baseline);

/// Machine-readable report (schema version 1; see tests/lint for the shape).
std::string result_json(const LintResult& result, const BaselineDiff& diff);

/// Human-readable report; the gate's stdout.
std::string human_report(const LintResult& result, const BaselineDiff& diff);

}  // namespace dut::lint
