// dut_trace — inspect and validate the observability artifacts:
//
//   dut_trace summary <trace.jsonl>       per-run rollup of a protocol
//                                         transcript (rounds, messages, bits,
//                                         bandwidth headroom, per-node load)
//   dut_trace check <trace.jsonl>         exit 0 iff every completed run's
//                                         recount matches its declared totals
//                                         and no traced message exceeds the
//                                         bandwidth budget
//   dut_trace check-report <report.json>  validate a BENCH_*.json run report
//                                         against schema v1
//
// Trace files are produced by running any engine-backed binary with
// DUT_TRACE=<path> (see DESIGN.md §9); reports by the bench binaries.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dut/obs/json.hpp"
#include "dut/obs/report.hpp"
#include "dut/obs/trace_reader.hpp"

namespace {

using dut::obs::TraceRunSummary;

void print_summary(const TraceRunSummary& run, std::size_t index) {
  std::printf("run %zu: model=%s nodes=%u seed=%llu%s\n", index,
              run.info.model.c_str(), run.info.nodes,
              static_cast<unsigned long long>(run.info.seed),
              run.truncated_tail ? " (tail-truncated)" : "");
  std::printf("  rounds: %llu   messages: %llu   total bits: %llu   "
              "max message bits: %llu\n",
              static_cast<unsigned long long>(run.rounds_seen),
              static_cast<unsigned long long>(run.messages),
              static_cast<unsigned long long>(run.total_bits),
              static_cast<unsigned long long>(run.max_message_bits));
  if (run.info.model == "congest" && run.info.bandwidth_bits > 0) {
    std::printf("  bandwidth: budget %llu bits/message, headroom %lld, "
                "over-budget sends %llu\n",
                static_cast<unsigned long long>(run.info.bandwidth_bits),
                static_cast<long long>(run.info.bandwidth_bits) -
                    static_cast<long long>(run.max_message_bits),
                static_cast<unsigned long long>(run.over_budget_sends));
  }
  if (!run.per_node_sent_bits.empty()) {
    std::uint64_t busiest_node = 0;
    std::uint64_t busiest_bits = 0;
    std::uint64_t total = 0;
    std::uint64_t senders = 0;
    for (std::size_t v = 0; v < run.per_node_sent_bits.size(); ++v) {
      const std::uint64_t bits = run.per_node_sent_bits[v];
      total += bits;
      if (bits > 0) ++senders;
      if (bits > busiest_bits) {
        busiest_bits = bits;
        busiest_node = v;
      }
    }
    std::printf("  per-node sent bits: %llu nodes sent, busiest node %llu "
                "with %llu bits (%.1f%% of traffic)\n",
                static_cast<unsigned long long>(senders),
                static_cast<unsigned long long>(busiest_node),
                static_cast<unsigned long long>(busiest_bits),
                total > 0 ? 100.0 * static_cast<double>(busiest_bits) /
                                static_cast<double>(total)
                          : 0.0);
  }
  std::printf("  halts: %llu\n", static_cast<unsigned long long>(run.halts));
  if (run.faults > 0) {
    std::printf("  injected faults: %llu\n",
                static_cast<unsigned long long>(run.faults));
  }
  if (run.unknown_events > 0) {
    std::printf("  unknown events: %llu (schema drift? writer newer than "
                "this reader)\n",
                static_cast<unsigned long long>(run.unknown_events));
  }
  for (const std::string& violation : run.violations) {
    std::printf("  VIOLATION: %s\n", violation.c_str());
  }
  if (run.truncated_tail) {
    std::printf("  recount vs engine totals: skipped (tail-truncated)\n");
  } else if (run.has_end) {
    std::printf("  recount vs engine totals: %s\n",
                run.consistent() ? "consistent" : "MISMATCH");
  } else {
    std::printf("  run did not complete (no run_end event)\n");
  }
}

int cmd_summary(const char* path) {
  const auto runs = dut::obs::read_trace_file(path);
  if (runs.empty()) {
    std::fprintf(stderr, "dut_trace: %s holds no runs\n", path);
    return 1;
  }
  std::printf("%s: %zu run(s)\n", path, runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) print_summary(runs[i], i);
  return 0;
}

int cmd_check(const char* path) {
  const auto runs = dut::obs::read_trace_file(path);
  if (runs.empty()) {
    std::fprintf(stderr, "dut_trace: %s holds no runs\n", path);
    return 1;
  }
  int failures = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TraceRunSummary& run = runs[i];
    if (run.truncated_tail) continue;  // tail mode: totals unavailable
    if (!run.violations.empty()) {
      std::fprintf(stderr, "run %zu: %zu violation(s) recorded\n", i,
                   run.violations.size());
      ++failures;
      continue;
    }
    if (!run.has_end) {
      std::fprintf(stderr, "run %zu: no run_end event\n", i);
      ++failures;
      continue;
    }
    if (!run.consistent()) {
      std::fprintf(stderr,
                   "run %zu: recount (%llu msgs / %llu bits / %llu rounds) "
                   "!= declared (%llu / %llu / %llu)\n",
                   i, static_cast<unsigned long long>(run.messages),
                   static_cast<unsigned long long>(run.total_bits),
                   static_cast<unsigned long long>(run.rounds_seen),
                   static_cast<unsigned long long>(run.declared.messages),
                   static_cast<unsigned long long>(run.declared.total_bits),
                   static_cast<unsigned long long>(run.declared.rounds));
      ++failures;
    }
    if (run.over_budget_sends > 0) {
      std::fprintf(stderr, "run %zu: %llu send(s) exceed the %llu-bit "
                   "bandwidth budget\n",
                   i, static_cast<unsigned long long>(run.over_budget_sends),
                   static_cast<unsigned long long>(run.info.bandwidth_bits));
      ++failures;
    }
    if (run.unknown_events > 0) {
      std::fprintf(stderr,
                   "run %zu: %llu event(s) of unknown kind (schema drift — "
                   "the recount cannot be trusted)\n",
                   i, static_cast<unsigned long long>(run.unknown_events));
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("%s: %zu run(s) consistent, all sends within budget\n", path,
                runs.size());
  }
  return failures == 0 ? 0 : 1;
}

int cmd_check_report(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dut_trace: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  dut::obs::Json document;
  try {
    document = dut::obs::Json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path, e.what());
    return 1;
  }
  const std::string reason = dut::obs::validate_report(document);
  if (!reason.empty()) {
    std::fprintf(stderr, "%s: invalid run report: %s\n", path,
                 reason.c_str());
    return 1;
  }
  const dut::obs::Json* id = document.get("id");
  const dut::obs::Json* checks = document.get("checks");
  std::printf("%s: valid run report (id=%s, %zu check(s))\n", path,
              id->as_string().c_str(), checks->size());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: dut_trace summary <trace.jsonl>\n"
               "       dut_trace check <trace.jsonl>\n"
               "       dut_trace check-report <report.json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  try {
    if (std::strcmp(argv[1], "summary") == 0) return cmd_summary(argv[2]);
    if (std::strcmp(argv[1], "check") == 0) return cmd_check(argv[2]);
    if (std::strcmp(argv[1], "check-report") == 0) {
      return cmd_check_report(argv[2]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dut_trace: %s\n", e.what());
    return 1;
  }
  return usage();
}
