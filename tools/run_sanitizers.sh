#!/usr/bin/env bash
# Runs the full ctest suite under the memory/UB sanitizer matrix:
#   * asan  — AddressSanitizer + UBSan (heap/stack/use-after-free plus UB)
#   * ubsan — UndefinedBehaviorSanitizer alone (faster; catches shift,
#             overflow and alignment bugs in the bit-packing hot paths)
# Both builds compile with -fno-sanitize-recover=undefined, so any UB aborts
# the offending test instead of printing a diagnostic and passing. Companion
# to run_tsan.sh (races) and the dut_lint gate (source-level determinism and
# protocol-safety rules); README "Verifying a change" runs all three.
set -euo pipefail

cd "$(dirname "$0")/.."

export DUT_THREADS="${DUT_THREADS:-4}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

for preset in asan ubsan; do
  echo "== configure + build (${preset}) =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"

  echo "== ctest (${preset}, DUT_THREADS=${DUT_THREADS}) =="
  ctest --test-dir "build-${preset}" --output-on-failure -j "$(nproc)"
done

echo "sanitizers: asan + ubsan suites passed"
