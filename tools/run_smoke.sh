#!/usr/bin/env bash
# Smoke-runs one experiment binary in a scratch workdir with protocol
# tracing on, then validates everything it emitted:
#   * every BENCH_*.json run report parses and passes schema v1, and
#   * the DUT_TRACE transcript (if the binary ran any engine) is internally
#     consistent and within the bandwidth budget (dut_trace check).
#
# Usage: run_smoke.sh [--replay <dut_replay-binary>] \
#            <dut_trace-binary> <workdir> <binary> [args...]
#        run_smoke.sh --lint <dut_lint-binary> <repo-root>
#        run_smoke.sh --sarif <dut_lint-binary> <repo-root>
#        run_smoke.sh --serve <dut_cli-binary>
# Registered per experiment as the smoke_* ctest entries (bench/CMakeLists);
# --replay additionally re-executes the transcript with dut_replay and
# byte-diffs it (the smoke_replay entries); the --lint mode is the
# smoke_lint entry (tools/dut_lint/CMakeLists); the --serve mode is the
# smoke_serve entry (tools/CMakeLists).
set -euo pipefail

# Serve mode: the `dut_cli serve` output is a pure function of its flags
# except the "timing:" trailer, so a serial single-shard run and an
# 8-thread 4-shard run must print byte-identical reports — per-epoch
# verdict tallies, sample means, latency percentiles and the FNV verdict
# digest all included (DESIGN.md §15's determinism contract, end to end
# through the CLI).
if [ "${1:-}" = "--serve" ]; then
  if [ "$#" -ne 2 ]; then
    echo "usage: $0 --serve <dut_cli-binary>" >&2
    exit 2
  fi
  dut_cli=$2
  flags=(--n 4096 --eps 1.6 --p 0.4 --streams 2048 --zipf 0.99
         --duration-epochs 6)
  # "serve shape:" echoes the shard/thread flags themselves; "timing:" is
  # wall clock. Everything else must match byte for byte.
  serial=$(DUT_THREADS=1 "$dut_cli" serve "${flags[@]}" --shards 1 \
    | grep -v -e '^timing:' -e '^serve shape:')
  sharded=$(DUT_THREADS=8 "$dut_cli" serve "${flags[@]}" --shards 4 \
    | grep -v -e '^timing:' -e '^serve shape:')
  if [ "$serial" != "$sharded" ]; then
    echo "smoke: serve output diverged between 1-thread/1-shard and" \
         "8-thread/4-shard runs" >&2
    diff <(echo "$serial") <(echo "$sharded") >&2 || true
    exit 1
  fi
  echo "$serial" | grep '^verdict digest:'
  echo "smoke: serve verdict stream identical across threads and shards"
  exit 0
fi

# Sarif mode: emit the SARIF 2.1.0 report for the repo gate and have the
# binary's own structural validator check it (the lint_repo_sarif ctest
# entry). The gate itself must also pass — a report full of fresh findings
# validating structurally is not success.
if [ "${1:-}" = "--sarif" ]; then
  if [ "$#" -ne 3 ]; then
    echo "usage: $0 --sarif <dut_lint-binary> <repo-root>" >&2
    exit 2
  fi
  dut_lint=$2
  repo_root=$3
  sarif_log=$(mktemp)
  trap 'rm -f "$sarif_log"' EXIT
  "$dut_lint" --root "$repo_root" \
    --baseline "$repo_root/tools/dut_lint/baseline.json" \
    --sarif "$sarif_log"
  "$dut_lint" --validate-sarif "$sarif_log"
  echo "smoke: sarif report validates"
  exit 0
fi

# Lint mode: run the dut_lint gate against its checked-in baseline and make
# sure the machine-readable report is well-formed JSON (python is only used
# as a JSON validator; the gate itself is the C++ binary).
if [ "${1:-}" = "--lint" ]; then
  if [ "$#" -ne 3 ]; then
    echo "usage: $0 --lint <dut_lint-binary> <repo-root>" >&2
    exit 2
  fi
  dut_lint=$2
  repo_root=$3
  "$dut_lint" --root "$repo_root" \
    --baseline "$repo_root/tools/dut_lint/baseline.json"
  json=$("$dut_lint" --root "$repo_root" \
    --baseline "$repo_root/tools/dut_lint/baseline.json" --json)
  if command -v python3 > /dev/null; then
    echo "$json" | python3 -c 'import json,sys; json.load(sys.stdin)'
  fi
  echo "smoke: lint gate clean"
  exit 0
fi

dut_replay=""
if [ "${1:-}" = "--replay" ]; then
  dut_replay=$2
  shift 2
fi

if [ "$#" -lt 3 ]; then
  echo "usage: $0 [--replay <dut_replay-binary>] <dut_trace-binary>" \
       "<workdir> <binary> [args...]" >&2
  exit 2
fi

dut_trace=$1
workdir=$2
binary=$3
shift 3

rm -rf "$workdir"
mkdir -p "$workdir"
cd "$workdir"

export DUT_TRACE="$workdir/trace.jsonl"
"$binary" "$@"

found_report=0
for report in BENCH_*.json; do
  [ -e "$report" ] || continue
  found_report=1
  "$dut_trace" check-report "$report"
done
if [ "$found_report" -eq 0 ]; then
  echo "smoke: $binary wrote no BENCH_*.json report" >&2
  exit 1
fi

# Binaries that never construct a network engine legitimately leave no
# transcript; when one exists it must check out — and, in --replay mode,
# re-execute byte-identically from its run_start replay preambles.
if [ -s "$DUT_TRACE" ]; then
  "$dut_trace" check "$DUT_TRACE"
  if [ -n "$dut_replay" ]; then
    trace_file="$DUT_TRACE"
    unset DUT_TRACE
    "$dut_replay" "$trace_file"
  fi
fi
