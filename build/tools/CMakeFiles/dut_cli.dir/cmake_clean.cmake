file(REMOVE_RECURSE
  "CMakeFiles/dut_cli.dir/dut_cli.cpp.o"
  "CMakeFiles/dut_cli.dir/dut_cli.cpp.o.d"
  "dut_cli"
  "dut_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
