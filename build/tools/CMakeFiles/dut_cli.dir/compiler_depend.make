# Empty compiler generated dependencies file for dut_cli.
# This may be replaced when dependencies are built.
