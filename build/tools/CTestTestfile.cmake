# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_plan_threshold]=] "/root/repo/build/tools/dut_cli" "plan-threshold" "--n" "65536" "--k" "8192" "--eps" "0.9")
set_tests_properties([=[cli_plan_threshold]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_plan_and]=] "/root/repo/build/tools/dut_cli" "plan-and" "--n" "131072" "--k" "16384" "--eps" "1.2")
set_tests_properties([=[cli_plan_and]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_plan_congest]=] "/root/repo/build/tools/dut_cli" "plan-congest" "--n" "4096" "--k" "4096" "--eps" "1.2")
set_tests_properties([=[cli_plan_congest]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_plan_congest_multisample]=] "/root/repo/build/tools/dut_cli" "plan-congest" "--n" "4096" "--k" "1024" "--eps" "0.9" "--samples" "16")
set_tests_properties([=[cli_plan_congest_multisample]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_run_threshold]=] "/root/repo/build/tools/dut_cli" "run-threshold" "--n" "16384" "--k" "2048" "--eps" "0.9" "--family" "paninski" "--trials" "20")
set_tests_properties([=[cli_run_threshold]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_families]=] "/root/repo/build/tools/dut_cli" "families" "--n" "1024")
set_tests_properties([=[cli_families]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_infeasible_reports]=] "/root/repo/build/tools/dut_cli" "plan-threshold" "--n" "1048576" "--k" "16" "--eps" "0.5")
set_tests_properties([=[cli_infeasible_reports]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_unknown_command]=] "/root/repo/build/tools/dut_cli" "frobnicate")
set_tests_properties([=[cli_unknown_command]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
