file(REMOVE_RECURSE
  "CMakeFiles/reference_profile.dir/reference_profile.cpp.o"
  "CMakeFiles/reference_profile.dir/reference_profile.cpp.o.d"
  "reference_profile"
  "reference_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
