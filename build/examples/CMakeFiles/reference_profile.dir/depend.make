# Empty dependencies file for reference_profile.
# This may be replaced when dependencies are built.
