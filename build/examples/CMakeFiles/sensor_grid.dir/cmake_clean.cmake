file(REMOVE_RECURSE
  "CMakeFiles/sensor_grid.dir/sensor_grid.cpp.o"
  "CMakeFiles/sensor_grid.dir/sensor_grid.cpp.o.d"
  "sensor_grid"
  "sensor_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
