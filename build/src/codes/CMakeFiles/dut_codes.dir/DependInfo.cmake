
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codes/src/basic_codes.cpp" "src/codes/CMakeFiles/dut_codes.dir/src/basic_codes.cpp.o" "gcc" "src/codes/CMakeFiles/dut_codes.dir/src/basic_codes.cpp.o.d"
  "/root/repo/src/codes/src/concatenated.cpp" "src/codes/CMakeFiles/dut_codes.dir/src/concatenated.cpp.o" "gcc" "src/codes/CMakeFiles/dut_codes.dir/src/concatenated.cpp.o.d"
  "/root/repo/src/codes/src/gf.cpp" "src/codes/CMakeFiles/dut_codes.dir/src/gf.cpp.o" "gcc" "src/codes/CMakeFiles/dut_codes.dir/src/gf.cpp.o.d"
  "/root/repo/src/codes/src/reed_solomon.cpp" "src/codes/CMakeFiles/dut_codes.dir/src/reed_solomon.cpp.o" "gcc" "src/codes/CMakeFiles/dut_codes.dir/src/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
