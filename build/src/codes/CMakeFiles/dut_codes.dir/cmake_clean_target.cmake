file(REMOVE_RECURSE
  "libdut_codes.a"
)
