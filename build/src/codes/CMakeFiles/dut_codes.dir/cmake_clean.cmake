file(REMOVE_RECURSE
  "CMakeFiles/dut_codes.dir/src/basic_codes.cpp.o"
  "CMakeFiles/dut_codes.dir/src/basic_codes.cpp.o.d"
  "CMakeFiles/dut_codes.dir/src/concatenated.cpp.o"
  "CMakeFiles/dut_codes.dir/src/concatenated.cpp.o.d"
  "CMakeFiles/dut_codes.dir/src/gf.cpp.o"
  "CMakeFiles/dut_codes.dir/src/gf.cpp.o.d"
  "CMakeFiles/dut_codes.dir/src/reed_solomon.cpp.o"
  "CMakeFiles/dut_codes.dir/src/reed_solomon.cpp.o.d"
  "libdut_codes.a"
  "libdut_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
