# Empty dependencies file for dut_codes.
# This may be replaced when dependencies are built.
