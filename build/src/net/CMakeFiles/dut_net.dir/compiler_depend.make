# Empty compiler generated dependencies file for dut_net.
# This may be replaced when dependencies are built.
