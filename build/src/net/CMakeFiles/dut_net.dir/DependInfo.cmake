
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/src/engine.cpp" "src/net/CMakeFiles/dut_net.dir/src/engine.cpp.o" "gcc" "src/net/CMakeFiles/dut_net.dir/src/engine.cpp.o.d"
  "/root/repo/src/net/src/graph.cpp" "src/net/CMakeFiles/dut_net.dir/src/graph.cpp.o" "gcc" "src/net/CMakeFiles/dut_net.dir/src/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/dut_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
