# Empty dependencies file for dut_net.
# This may be replaced when dependencies are built.
