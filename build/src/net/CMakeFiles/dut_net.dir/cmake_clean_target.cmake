file(REMOVE_RECURSE
  "libdut_net.a"
)
