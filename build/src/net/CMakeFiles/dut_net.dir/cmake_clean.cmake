file(REMOVE_RECURSE
  "CMakeFiles/dut_net.dir/src/engine.cpp.o"
  "CMakeFiles/dut_net.dir/src/engine.cpp.o.d"
  "CMakeFiles/dut_net.dir/src/graph.cpp.o"
  "CMakeFiles/dut_net.dir/src/graph.cpp.o.d"
  "libdut_net.a"
  "libdut_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
