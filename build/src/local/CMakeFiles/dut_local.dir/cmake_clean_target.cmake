file(REMOVE_RECURSE
  "libdut_local.a"
)
