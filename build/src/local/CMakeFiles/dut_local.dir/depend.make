# Empty dependencies file for dut_local.
# This may be replaced when dependencies are built.
