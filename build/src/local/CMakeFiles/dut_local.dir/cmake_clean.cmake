file(REMOVE_RECURSE
  "CMakeFiles/dut_local.dir/src/mis.cpp.o"
  "CMakeFiles/dut_local.dir/src/mis.cpp.o.d"
  "CMakeFiles/dut_local.dir/src/tester.cpp.o"
  "CMakeFiles/dut_local.dir/src/tester.cpp.o.d"
  "libdut_local.a"
  "libdut_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
