
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/local/src/mis.cpp" "src/local/CMakeFiles/dut_local.dir/src/mis.cpp.o" "gcc" "src/local/CMakeFiles/dut_local.dir/src/mis.cpp.o.d"
  "/root/repo/src/local/src/tester.cpp" "src/local/CMakeFiles/dut_local.dir/src/tester.cpp.o" "gcc" "src/local/CMakeFiles/dut_local.dir/src/tester.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dut_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dut_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dut_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
