file(REMOVE_RECURSE
  "libdut_core.a"
)
