file(REMOVE_RECURSE
  "CMakeFiles/dut_core.dir/src/amplified.cpp.o"
  "CMakeFiles/dut_core.dir/src/amplified.cpp.o.d"
  "CMakeFiles/dut_core.dir/src/asymmetric.cpp.o"
  "CMakeFiles/dut_core.dir/src/asymmetric.cpp.o.d"
  "CMakeFiles/dut_core.dir/src/baselines.cpp.o"
  "CMakeFiles/dut_core.dir/src/baselines.cpp.o.d"
  "CMakeFiles/dut_core.dir/src/distribution.cpp.o"
  "CMakeFiles/dut_core.dir/src/distribution.cpp.o.d"
  "CMakeFiles/dut_core.dir/src/estimators.cpp.o"
  "CMakeFiles/dut_core.dir/src/estimators.cpp.o.d"
  "CMakeFiles/dut_core.dir/src/families.cpp.o"
  "CMakeFiles/dut_core.dir/src/families.cpp.o.d"
  "CMakeFiles/dut_core.dir/src/gap_tester.cpp.o"
  "CMakeFiles/dut_core.dir/src/gap_tester.cpp.o.d"
  "CMakeFiles/dut_core.dir/src/identity_filter.cpp.o"
  "CMakeFiles/dut_core.dir/src/identity_filter.cpp.o.d"
  "CMakeFiles/dut_core.dir/src/sampler.cpp.o"
  "CMakeFiles/dut_core.dir/src/sampler.cpp.o.d"
  "CMakeFiles/dut_core.dir/src/zero_round.cpp.o"
  "CMakeFiles/dut_core.dir/src/zero_round.cpp.o.d"
  "libdut_core.a"
  "libdut_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
