
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/amplified.cpp" "src/core/CMakeFiles/dut_core.dir/src/amplified.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/amplified.cpp.o.d"
  "/root/repo/src/core/src/asymmetric.cpp" "src/core/CMakeFiles/dut_core.dir/src/asymmetric.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/asymmetric.cpp.o.d"
  "/root/repo/src/core/src/baselines.cpp" "src/core/CMakeFiles/dut_core.dir/src/baselines.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/baselines.cpp.o.d"
  "/root/repo/src/core/src/distribution.cpp" "src/core/CMakeFiles/dut_core.dir/src/distribution.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/distribution.cpp.o.d"
  "/root/repo/src/core/src/estimators.cpp" "src/core/CMakeFiles/dut_core.dir/src/estimators.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/estimators.cpp.o.d"
  "/root/repo/src/core/src/families.cpp" "src/core/CMakeFiles/dut_core.dir/src/families.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/families.cpp.o.d"
  "/root/repo/src/core/src/gap_tester.cpp" "src/core/CMakeFiles/dut_core.dir/src/gap_tester.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/gap_tester.cpp.o.d"
  "/root/repo/src/core/src/identity_filter.cpp" "src/core/CMakeFiles/dut_core.dir/src/identity_filter.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/identity_filter.cpp.o.d"
  "/root/repo/src/core/src/sampler.cpp" "src/core/CMakeFiles/dut_core.dir/src/sampler.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/sampler.cpp.o.d"
  "/root/repo/src/core/src/zero_round.cpp" "src/core/CMakeFiles/dut_core.dir/src/zero_round.cpp.o" "gcc" "src/core/CMakeFiles/dut_core.dir/src/zero_round.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/dut_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
