# Empty compiler generated dependencies file for dut_core.
# This may be replaced when dependencies are built.
