file(REMOVE_RECURSE
  "libdut_smp.a"
)
