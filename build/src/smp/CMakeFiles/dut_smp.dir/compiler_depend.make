# Empty compiler generated dependencies file for dut_smp.
# This may be replaced when dependencies are built.
