
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smp/src/equality.cpp" "src/smp/CMakeFiles/dut_smp.dir/src/equality.cpp.o" "gcc" "src/smp/CMakeFiles/dut_smp.dir/src/equality.cpp.o.d"
  "/root/repo/src/smp/src/lowerbound.cpp" "src/smp/CMakeFiles/dut_smp.dir/src/lowerbound.cpp.o" "gcc" "src/smp/CMakeFiles/dut_smp.dir/src/lowerbound.cpp.o.d"
  "/root/repo/src/smp/src/public_coin.cpp" "src/smp/CMakeFiles/dut_smp.dir/src/public_coin.cpp.o" "gcc" "src/smp/CMakeFiles/dut_smp.dir/src/public_coin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codes/CMakeFiles/dut_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dut_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dut_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
