file(REMOVE_RECURSE
  "CMakeFiles/dut_smp.dir/src/equality.cpp.o"
  "CMakeFiles/dut_smp.dir/src/equality.cpp.o.d"
  "CMakeFiles/dut_smp.dir/src/lowerbound.cpp.o"
  "CMakeFiles/dut_smp.dir/src/lowerbound.cpp.o.d"
  "CMakeFiles/dut_smp.dir/src/public_coin.cpp.o"
  "CMakeFiles/dut_smp.dir/src/public_coin.cpp.o.d"
  "libdut_smp.a"
  "libdut_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
