# Empty dependencies file for dut_stats.
# This may be replaced when dependencies are built.
