
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/src/bounds.cpp" "src/stats/CMakeFiles/dut_stats.dir/src/bounds.cpp.o" "gcc" "src/stats/CMakeFiles/dut_stats.dir/src/bounds.cpp.o.d"
  "/root/repo/src/stats/src/info.cpp" "src/stats/CMakeFiles/dut_stats.dir/src/info.cpp.o" "gcc" "src/stats/CMakeFiles/dut_stats.dir/src/info.cpp.o.d"
  "/root/repo/src/stats/src/rng.cpp" "src/stats/CMakeFiles/dut_stats.dir/src/rng.cpp.o" "gcc" "src/stats/CMakeFiles/dut_stats.dir/src/rng.cpp.o.d"
  "/root/repo/src/stats/src/summary.cpp" "src/stats/CMakeFiles/dut_stats.dir/src/summary.cpp.o" "gcc" "src/stats/CMakeFiles/dut_stats.dir/src/summary.cpp.o.d"
  "/root/repo/src/stats/src/table.cpp" "src/stats/CMakeFiles/dut_stats.dir/src/table.cpp.o" "gcc" "src/stats/CMakeFiles/dut_stats.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
