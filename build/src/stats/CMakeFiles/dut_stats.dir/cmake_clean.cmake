file(REMOVE_RECURSE
  "CMakeFiles/dut_stats.dir/src/bounds.cpp.o"
  "CMakeFiles/dut_stats.dir/src/bounds.cpp.o.d"
  "CMakeFiles/dut_stats.dir/src/info.cpp.o"
  "CMakeFiles/dut_stats.dir/src/info.cpp.o.d"
  "CMakeFiles/dut_stats.dir/src/rng.cpp.o"
  "CMakeFiles/dut_stats.dir/src/rng.cpp.o.d"
  "CMakeFiles/dut_stats.dir/src/summary.cpp.o"
  "CMakeFiles/dut_stats.dir/src/summary.cpp.o.d"
  "CMakeFiles/dut_stats.dir/src/table.cpp.o"
  "CMakeFiles/dut_stats.dir/src/table.cpp.o.d"
  "libdut_stats.a"
  "libdut_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
