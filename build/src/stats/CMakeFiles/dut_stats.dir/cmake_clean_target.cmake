file(REMOVE_RECURSE
  "libdut_stats.a"
)
