# Empty compiler generated dependencies file for dut_stats.
# This may be replaced when dependencies are built.
