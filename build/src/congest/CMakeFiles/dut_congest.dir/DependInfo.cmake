
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/congest/src/aggregation.cpp" "src/congest/CMakeFiles/dut_congest.dir/src/aggregation.cpp.o" "gcc" "src/congest/CMakeFiles/dut_congest.dir/src/aggregation.cpp.o.d"
  "/root/repo/src/congest/src/token_packaging.cpp" "src/congest/CMakeFiles/dut_congest.dir/src/token_packaging.cpp.o" "gcc" "src/congest/CMakeFiles/dut_congest.dir/src/token_packaging.cpp.o.d"
  "/root/repo/src/congest/src/uniformity.cpp" "src/congest/CMakeFiles/dut_congest.dir/src/uniformity.cpp.o" "gcc" "src/congest/CMakeFiles/dut_congest.dir/src/uniformity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dut_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dut_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dut_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
