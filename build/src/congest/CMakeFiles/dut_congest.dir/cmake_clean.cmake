file(REMOVE_RECURSE
  "CMakeFiles/dut_congest.dir/src/aggregation.cpp.o"
  "CMakeFiles/dut_congest.dir/src/aggregation.cpp.o.d"
  "CMakeFiles/dut_congest.dir/src/token_packaging.cpp.o"
  "CMakeFiles/dut_congest.dir/src/token_packaging.cpp.o.d"
  "CMakeFiles/dut_congest.dir/src/uniformity.cpp.o"
  "CMakeFiles/dut_congest.dir/src/uniformity.cpp.o.d"
  "libdut_congest.a"
  "libdut_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
