file(REMOVE_RECURSE
  "libdut_congest.a"
)
