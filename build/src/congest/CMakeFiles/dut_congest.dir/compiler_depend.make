# Empty compiler generated dependencies file for dut_congest.
# This may be replaced when dependencies are built.
