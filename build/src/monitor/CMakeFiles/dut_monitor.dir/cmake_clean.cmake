file(REMOVE_RECURSE
  "CMakeFiles/dut_monitor.dir/src/fleet_monitor.cpp.o"
  "CMakeFiles/dut_monitor.dir/src/fleet_monitor.cpp.o.d"
  "libdut_monitor.a"
  "libdut_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
