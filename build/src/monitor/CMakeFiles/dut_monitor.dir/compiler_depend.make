# Empty compiler generated dependencies file for dut_monitor.
# This may be replaced when dependencies are built.
