file(REMOVE_RECURSE
  "libdut_monitor.a"
)
