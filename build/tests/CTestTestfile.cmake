# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dut_stats_tests[1]_include.cmake")
include("/root/repo/build/tests/dut_core_tests[1]_include.cmake")
include("/root/repo/build/tests/dut_net_tests[1]_include.cmake")
include("/root/repo/build/tests/dut_congest_tests[1]_include.cmake")
include("/root/repo/build/tests/dut_local_tests[1]_include.cmake")
include("/root/repo/build/tests/dut_codes_tests[1]_include.cmake")
include("/root/repo/build/tests/dut_smp_tests[1]_include.cmake")
include("/root/repo/build/tests/dut_monitor_tests[1]_include.cmake")
include("/root/repo/build/tests/dut_integration_tests[1]_include.cmake")
