
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/amplified_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/amplified_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/amplified_test.cpp.o.d"
  "/root/repo/tests/core/asymmetric_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/asymmetric_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/asymmetric_test.cpp.o.d"
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/distribution_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/distribution_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/distribution_test.cpp.o.d"
  "/root/repo/tests/core/estimators_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/estimators_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/estimators_test.cpp.o.d"
  "/root/repo/tests/core/families_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/families_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/families_test.cpp.o.d"
  "/root/repo/tests/core/gap_tester_property_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/gap_tester_property_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/gap_tester_property_test.cpp.o.d"
  "/root/repo/tests/core/gap_tester_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/gap_tester_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/gap_tester_test.cpp.o.d"
  "/root/repo/tests/core/identity_filter_property_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/identity_filter_property_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/identity_filter_property_test.cpp.o.d"
  "/root/repo/tests/core/identity_filter_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/identity_filter_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/identity_filter_test.cpp.o.d"
  "/root/repo/tests/core/planner_property_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/planner_property_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/planner_property_test.cpp.o.d"
  "/root/repo/tests/core/sampler_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/sampler_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/sampler_test.cpp.o.d"
  "/root/repo/tests/core/zero_round_test.cpp" "tests/CMakeFiles/dut_core_tests.dir/core/zero_round_test.cpp.o" "gcc" "tests/CMakeFiles/dut_core_tests.dir/core/zero_round_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dut_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dut_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
