# Empty compiler generated dependencies file for dut_core_tests.
# This may be replaced when dependencies are built.
