file(REMOVE_RECURSE
  "CMakeFiles/dut_core_tests.dir/core/amplified_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/amplified_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/asymmetric_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/asymmetric_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/baselines_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/distribution_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/distribution_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/estimators_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/estimators_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/families_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/families_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/gap_tester_property_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/gap_tester_property_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/gap_tester_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/gap_tester_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/identity_filter_property_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/identity_filter_property_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/identity_filter_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/identity_filter_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/planner_property_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/planner_property_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/sampler_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/sampler_test.cpp.o.d"
  "CMakeFiles/dut_core_tests.dir/core/zero_round_test.cpp.o"
  "CMakeFiles/dut_core_tests.dir/core/zero_round_test.cpp.o.d"
  "dut_core_tests"
  "dut_core_tests.pdb"
  "dut_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
