# Empty compiler generated dependencies file for dut_local_tests.
# This may be replaced when dependencies are built.
