
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/local/mis_test.cpp" "tests/CMakeFiles/dut_local_tests.dir/local/mis_test.cpp.o" "gcc" "tests/CMakeFiles/dut_local_tests.dir/local/mis_test.cpp.o.d"
  "/root/repo/tests/local/tester_test.cpp" "tests/CMakeFiles/dut_local_tests.dir/local/tester_test.cpp.o" "gcc" "tests/CMakeFiles/dut_local_tests.dir/local/tester_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/local/CMakeFiles/dut_local.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dut_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dut_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dut_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
