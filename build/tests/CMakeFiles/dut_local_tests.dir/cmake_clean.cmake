file(REMOVE_RECURSE
  "CMakeFiles/dut_local_tests.dir/local/mis_test.cpp.o"
  "CMakeFiles/dut_local_tests.dir/local/mis_test.cpp.o.d"
  "CMakeFiles/dut_local_tests.dir/local/tester_test.cpp.o"
  "CMakeFiles/dut_local_tests.dir/local/tester_test.cpp.o.d"
  "dut_local_tests"
  "dut_local_tests.pdb"
  "dut_local_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_local_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
