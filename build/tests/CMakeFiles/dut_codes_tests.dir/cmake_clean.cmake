file(REMOVE_RECURSE
  "CMakeFiles/dut_codes_tests.dir/codes/codes_property_test.cpp.o"
  "CMakeFiles/dut_codes_tests.dir/codes/codes_property_test.cpp.o.d"
  "CMakeFiles/dut_codes_tests.dir/codes/codes_test.cpp.o"
  "CMakeFiles/dut_codes_tests.dir/codes/codes_test.cpp.o.d"
  "CMakeFiles/dut_codes_tests.dir/codes/gf_test.cpp.o"
  "CMakeFiles/dut_codes_tests.dir/codes/gf_test.cpp.o.d"
  "dut_codes_tests"
  "dut_codes_tests.pdb"
  "dut_codes_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_codes_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
