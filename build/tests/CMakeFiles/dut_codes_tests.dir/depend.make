# Empty dependencies file for dut_codes_tests.
# This may be replaced when dependencies are built.
