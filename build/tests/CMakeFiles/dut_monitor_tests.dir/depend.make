# Empty dependencies file for dut_monitor_tests.
# This may be replaced when dependencies are built.
