file(REMOVE_RECURSE
  "CMakeFiles/dut_monitor_tests.dir/monitor/fleet_monitor_test.cpp.o"
  "CMakeFiles/dut_monitor_tests.dir/monitor/fleet_monitor_test.cpp.o.d"
  "dut_monitor_tests"
  "dut_monitor_tests.pdb"
  "dut_monitor_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_monitor_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
