# Empty compiler generated dependencies file for dut_integration_tests.
# This may be replaced when dependencies are built.
