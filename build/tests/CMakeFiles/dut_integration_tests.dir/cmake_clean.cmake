file(REMOVE_RECURSE
  "CMakeFiles/dut_integration_tests.dir/integration/failure_injection_test.cpp.o"
  "CMakeFiles/dut_integration_tests.dir/integration/failure_injection_test.cpp.o.d"
  "CMakeFiles/dut_integration_tests.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/dut_integration_tests.dir/integration/pipeline_test.cpp.o.d"
  "CMakeFiles/dut_integration_tests.dir/integration/smp_over_network_test.cpp.o"
  "CMakeFiles/dut_integration_tests.dir/integration/smp_over_network_test.cpp.o.d"
  "dut_integration_tests"
  "dut_integration_tests.pdb"
  "dut_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
