file(REMOVE_RECURSE
  "CMakeFiles/dut_congest_tests.dir/congest/aggregation_test.cpp.o"
  "CMakeFiles/dut_congest_tests.dir/congest/aggregation_test.cpp.o.d"
  "CMakeFiles/dut_congest_tests.dir/congest/leader_election_test.cpp.o"
  "CMakeFiles/dut_congest_tests.dir/congest/leader_election_test.cpp.o.d"
  "CMakeFiles/dut_congest_tests.dir/congest/token_packaging_test.cpp.o"
  "CMakeFiles/dut_congest_tests.dir/congest/token_packaging_test.cpp.o.d"
  "CMakeFiles/dut_congest_tests.dir/congest/uniformity_test.cpp.o"
  "CMakeFiles/dut_congest_tests.dir/congest/uniformity_test.cpp.o.d"
  "dut_congest_tests"
  "dut_congest_tests.pdb"
  "dut_congest_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_congest_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
