# Empty dependencies file for dut_congest_tests.
# This may be replaced when dependencies are built.
