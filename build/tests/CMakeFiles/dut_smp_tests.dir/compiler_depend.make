# Empty compiler generated dependencies file for dut_smp_tests.
# This may be replaced when dependencies are built.
