file(REMOVE_RECURSE
  "CMakeFiles/dut_smp_tests.dir/smp/equality_test.cpp.o"
  "CMakeFiles/dut_smp_tests.dir/smp/equality_test.cpp.o.d"
  "CMakeFiles/dut_smp_tests.dir/smp/public_coin_test.cpp.o"
  "CMakeFiles/dut_smp_tests.dir/smp/public_coin_test.cpp.o.d"
  "dut_smp_tests"
  "dut_smp_tests.pdb"
  "dut_smp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_smp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
