
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/smp/equality_test.cpp" "tests/CMakeFiles/dut_smp_tests.dir/smp/equality_test.cpp.o" "gcc" "tests/CMakeFiles/dut_smp_tests.dir/smp/equality_test.cpp.o.d"
  "/root/repo/tests/smp/public_coin_test.cpp" "tests/CMakeFiles/dut_smp_tests.dir/smp/public_coin_test.cpp.o" "gcc" "tests/CMakeFiles/dut_smp_tests.dir/smp/public_coin_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smp/CMakeFiles/dut_smp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dut_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/dut_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dut_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
