
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/bounds_test.cpp" "tests/CMakeFiles/dut_stats_tests.dir/stats/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/dut_stats_tests.dir/stats/bounds_test.cpp.o.d"
  "/root/repo/tests/stats/info_test.cpp" "tests/CMakeFiles/dut_stats_tests.dir/stats/info_test.cpp.o" "gcc" "tests/CMakeFiles/dut_stats_tests.dir/stats/info_test.cpp.o.d"
  "/root/repo/tests/stats/rng_test.cpp" "tests/CMakeFiles/dut_stats_tests.dir/stats/rng_test.cpp.o" "gcc" "tests/CMakeFiles/dut_stats_tests.dir/stats/rng_test.cpp.o.d"
  "/root/repo/tests/stats/summary_test.cpp" "tests/CMakeFiles/dut_stats_tests.dir/stats/summary_test.cpp.o" "gcc" "tests/CMakeFiles/dut_stats_tests.dir/stats/summary_test.cpp.o.d"
  "/root/repo/tests/stats/table_test.cpp" "tests/CMakeFiles/dut_stats_tests.dir/stats/table_test.cpp.o" "gcc" "tests/CMakeFiles/dut_stats_tests.dir/stats/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/dut_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
