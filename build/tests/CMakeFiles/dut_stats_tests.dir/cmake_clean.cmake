file(REMOVE_RECURSE
  "CMakeFiles/dut_stats_tests.dir/stats/bounds_test.cpp.o"
  "CMakeFiles/dut_stats_tests.dir/stats/bounds_test.cpp.o.d"
  "CMakeFiles/dut_stats_tests.dir/stats/info_test.cpp.o"
  "CMakeFiles/dut_stats_tests.dir/stats/info_test.cpp.o.d"
  "CMakeFiles/dut_stats_tests.dir/stats/rng_test.cpp.o"
  "CMakeFiles/dut_stats_tests.dir/stats/rng_test.cpp.o.d"
  "CMakeFiles/dut_stats_tests.dir/stats/summary_test.cpp.o"
  "CMakeFiles/dut_stats_tests.dir/stats/summary_test.cpp.o.d"
  "CMakeFiles/dut_stats_tests.dir/stats/table_test.cpp.o"
  "CMakeFiles/dut_stats_tests.dir/stats/table_test.cpp.o.d"
  "dut_stats_tests"
  "dut_stats_tests.pdb"
  "dut_stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
