# Empty dependencies file for dut_stats_tests.
# This may be replaced when dependencies are built.
