# Empty compiler generated dependencies file for dut_stats_tests.
# This may be replaced when dependencies are built.
