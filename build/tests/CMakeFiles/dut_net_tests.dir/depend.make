# Empty dependencies file for dut_net_tests.
# This may be replaced when dependencies are built.
