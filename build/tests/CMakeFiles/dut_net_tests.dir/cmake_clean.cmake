file(REMOVE_RECURSE
  "CMakeFiles/dut_net_tests.dir/net/engine_stress_test.cpp.o"
  "CMakeFiles/dut_net_tests.dir/net/engine_stress_test.cpp.o.d"
  "CMakeFiles/dut_net_tests.dir/net/engine_test.cpp.o"
  "CMakeFiles/dut_net_tests.dir/net/engine_test.cpp.o.d"
  "CMakeFiles/dut_net_tests.dir/net/graph_test.cpp.o"
  "CMakeFiles/dut_net_tests.dir/net/graph_test.cpp.o.d"
  "dut_net_tests"
  "dut_net_tests.pdb"
  "dut_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
