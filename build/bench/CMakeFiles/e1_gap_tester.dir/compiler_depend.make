# Empty compiler generated dependencies file for e1_gap_tester.
# This may be replaced when dependencies are built.
