file(REMOVE_RECURSE
  "CMakeFiles/e1_gap_tester.dir/e1_gap_tester.cpp.o"
  "CMakeFiles/e1_gap_tester.dir/e1_gap_tester.cpp.o.d"
  "e1_gap_tester"
  "e1_gap_tester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_gap_tester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
