file(REMOVE_RECURSE
  "CMakeFiles/e3_birthday_bound.dir/e3_birthday_bound.cpp.o"
  "CMakeFiles/e3_birthday_bound.dir/e3_birthday_bound.cpp.o.d"
  "e3_birthday_bound"
  "e3_birthday_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_birthday_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
