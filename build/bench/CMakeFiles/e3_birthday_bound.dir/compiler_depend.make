# Empty compiler generated dependencies file for e3_birthday_bound.
# This may be replaced when dependencies are built.
