# Empty compiler generated dependencies file for e5_threshold.
# This may be replaced when dependencies are built.
