file(REMOVE_RECURSE
  "CMakeFiles/e5_threshold.dir/e5_threshold.cpp.o"
  "CMakeFiles/e5_threshold.dir/e5_threshold.cpp.o.d"
  "e5_threshold"
  "e5_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
