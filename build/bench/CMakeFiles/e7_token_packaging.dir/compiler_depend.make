# Empty compiler generated dependencies file for e7_token_packaging.
# This may be replaced when dependencies are built.
