file(REMOVE_RECURSE
  "CMakeFiles/e7_token_packaging.dir/e7_token_packaging.cpp.o"
  "CMakeFiles/e7_token_packaging.dir/e7_token_packaging.cpp.o.d"
  "e7_token_packaging"
  "e7_token_packaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_token_packaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
