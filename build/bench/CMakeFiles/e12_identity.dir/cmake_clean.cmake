file(REMOVE_RECURSE
  "CMakeFiles/e12_identity.dir/e12_identity.cpp.o"
  "CMakeFiles/e12_identity.dir/e12_identity.cpp.o.d"
  "e12_identity"
  "e12_identity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_identity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
