# Empty dependencies file for e12_identity.
# This may be replaced when dependencies are built.
