# Empty dependencies file for e4_and_rule.
# This may be replaced when dependencies are built.
