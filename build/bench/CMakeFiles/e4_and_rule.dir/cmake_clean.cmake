file(REMOVE_RECURSE
  "CMakeFiles/e4_and_rule.dir/e4_and_rule.cpp.o"
  "CMakeFiles/e4_and_rule.dir/e4_and_rule.cpp.o.d"
  "e4_and_rule"
  "e4_and_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_and_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
