# Empty dependencies file for e11_lower_bound.
# This may be replaced when dependencies are built.
