file(REMOVE_RECURSE
  "CMakeFiles/e11_lower_bound.dir/e11_lower_bound.cpp.o"
  "CMakeFiles/e11_lower_bound.dir/e11_lower_bound.cpp.o.d"
  "e11_lower_bound"
  "e11_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
