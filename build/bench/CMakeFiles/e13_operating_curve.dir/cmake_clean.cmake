file(REMOVE_RECURSE
  "CMakeFiles/e13_operating_curve.dir/e13_operating_curve.cpp.o"
  "CMakeFiles/e13_operating_curve.dir/e13_operating_curve.cpp.o.d"
  "e13_operating_curve"
  "e13_operating_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_operating_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
