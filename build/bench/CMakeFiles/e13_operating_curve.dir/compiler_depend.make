# Empty compiler generated dependencies file for e13_operating_curve.
# This may be replaced when dependencies are built.
