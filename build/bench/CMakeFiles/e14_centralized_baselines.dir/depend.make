# Empty dependencies file for e14_centralized_baselines.
# This may be replaced when dependencies are built.
