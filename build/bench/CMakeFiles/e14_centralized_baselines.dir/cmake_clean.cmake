file(REMOVE_RECURSE
  "CMakeFiles/e14_centralized_baselines.dir/e14_centralized_baselines.cpp.o"
  "CMakeFiles/e14_centralized_baselines.dir/e14_centralized_baselines.cpp.o.d"
  "e14_centralized_baselines"
  "e14_centralized_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_centralized_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
