file(REMOVE_RECURSE
  "CMakeFiles/e8_congest.dir/e8_congest.cpp.o"
  "CMakeFiles/e8_congest.dir/e8_congest.cpp.o.d"
  "e8_congest"
  "e8_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
