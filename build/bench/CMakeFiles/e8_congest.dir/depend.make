# Empty dependencies file for e8_congest.
# This may be replaced when dependencies are built.
