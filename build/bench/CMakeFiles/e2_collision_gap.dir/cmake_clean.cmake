file(REMOVE_RECURSE
  "CMakeFiles/e2_collision_gap.dir/e2_collision_gap.cpp.o"
  "CMakeFiles/e2_collision_gap.dir/e2_collision_gap.cpp.o.d"
  "e2_collision_gap"
  "e2_collision_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_collision_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
