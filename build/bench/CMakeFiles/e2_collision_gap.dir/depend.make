# Empty dependencies file for e2_collision_gap.
# This may be replaced when dependencies are built.
