# Empty compiler generated dependencies file for e10_smp_equality.
# This may be replaced when dependencies are built.
