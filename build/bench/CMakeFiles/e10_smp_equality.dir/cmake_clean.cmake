file(REMOVE_RECURSE
  "CMakeFiles/e10_smp_equality.dir/e10_smp_equality.cpp.o"
  "CMakeFiles/e10_smp_equality.dir/e10_smp_equality.cpp.o.d"
  "e10_smp_equality"
  "e10_smp_equality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_smp_equality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
