file(REMOVE_RECURSE
  "CMakeFiles/e6_asymmetric.dir/e6_asymmetric.cpp.o"
  "CMakeFiles/e6_asymmetric.dir/e6_asymmetric.cpp.o.d"
  "e6_asymmetric"
  "e6_asymmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
