# Empty dependencies file for e6_asymmetric.
# This may be replaced when dependencies are built.
