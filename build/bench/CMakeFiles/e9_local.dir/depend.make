# Empty dependencies file for e9_local.
# This may be replaced when dependencies are built.
