file(REMOVE_RECURSE
  "CMakeFiles/e9_local.dir/e9_local.cpp.o"
  "CMakeFiles/e9_local.dir/e9_local.cpp.o.d"
  "e9_local"
  "e9_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
