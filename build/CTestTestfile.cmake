# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/stats")
subdirs("src/core")
subdirs("src/codes")
subdirs("src/net")
subdirs("src/congest")
subdirs("src/local")
subdirs("src/smp")
subdirs("src/monitor")
subdirs("tests")
subdirs("bench")
subdirs("tools")
subdirs("examples")
