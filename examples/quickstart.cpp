// Quickstart: distributed uniformity testing in a dozen lines.
//
// A network of k = 4096 nodes each draws a handful of samples from an
// unknown distribution on n = 65536 elements. Using the paper's threshold
// rule (Theorem 1.2), the network distinguishes "uniform" from "0.9-far
// from uniform" with error < 1/3 — while each node draws far fewer than
// the Theta(sqrt(n)/eps^2) samples a single tester would need.

#include <cmath>
#include <cstdio>

#include "dut/core/families.hpp"
#include "dut/core/zero_round.hpp"
#include "dut/stats/summary.hpp"

int main() {
  const std::uint64_t n = 1 << 16;  // domain size
  const std::uint64_t k = 8192;     // network size
  const double eps = 0.9;           // L1 distance parameter

  // 1. Plan the 0-round threshold tester (error target 1/4 per side).
  const dut::core::ThresholdPlan plan = dut::core::plan_threshold(
      n, k, eps, 0.25, dut::core::TailBound::kExactBinomial);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  std::printf("plan: %llu samples per node (single node would need ~%.0f), "
              "reject threshold T = %llu of k = %llu nodes\n",
              static_cast<unsigned long long>(plan.base.s),
              3.0 * std::sqrt(static_cast<double>(n)) / (eps * eps),
              static_cast<unsigned long long>(plan.threshold),
              static_cast<unsigned long long>(k));

  // 2. Run it against the uniform distribution and a worst-case far one.
  const dut::core::AliasSampler uniform(dut::core::uniform(n));
  const dut::core::AliasSampler far(dut::core::paninski_two_bump(n, eps));

  const auto false_reject = dut::stats::estimate_probability(
      1, 200, [&](dut::stats::Xoshiro256& rng) {
        return dut::core::run_threshold_network(plan, uniform, rng)
            .rejects();
      });
  const auto detection = dut::stats::estimate_probability(
      2, 200, [&](dut::stats::Xoshiro256& rng) {
        return dut::core::run_threshold_network(plan, far, rng)
            .rejects();
      });

  std::printf("uniform input:  network rejects %.0f%% of runs "
              "(target < 25%%)\n",
              100.0 * false_reject.p_hat);
  std::printf("eps-far input:  network rejects %.0f%% of runs "
              "(target > 75%%)\n",
              100.0 * detection.p_hat);
  return 0;
}
