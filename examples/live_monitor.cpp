// Live fleet monitoring with drift injection — the adoption-layer API.
//
// A 4096-node fleet streams observations epoch by epoch. Mid-run the
// underlying distribution drifts (a hotspot grows), and later recovers.
// The FleetMonitor raises alarms per epoch and reports a calibrated
// distance score, so the operator sees both the verdict and the magnitude.

#include <cstdio>
#include <sstream>

#include "dut/core/families.hpp"
#include "dut/core/sampler.hpp"
#include "dut/monitor/fleet_monitor.hpp"
#include "dut/stats/table.hpp"

int main() {
  dut::monitor::MonitorConfig config;
  config.domain = 1 << 14;
  config.nodes = 4096;
  config.epsilon = 0.9;
  config.error = 0.15;  // calmer alarm policy: <= 15% false-alarm epochs
  config.seed = 2026;

  dut::monitor::FleetMonitor monitor(config);
  std::printf("fleet monitor: %u nodes, window %llu samples/node/epoch, "
              "alarm at %llu votes\n\n",
              config.nodes,
              static_cast<unsigned long long>(monitor.window_size()),
              static_cast<unsigned long long>(monitor.alarm_threshold()));

  // Timeline: 3 healthy epochs, 3 with a growing hotspot, 2 recovered.
  struct Phase {
    const char* label;
    double hotspot_share;
    int epochs;
  };
  const Phase timeline[] = {
      {"healthy", 0.0, 3}, {"hotspot 1%", 0.01, 1}, {"hotspot 3%", 0.03, 1},
      {"hotspot 10%", 0.10, 1}, {"recovered", 0.0, 2},
  };

  dut::stats::TextTable table({"epoch", "phase", "votes", "score",
                               "alarm"});
  dut::stats::Xoshiro256 rng(1);
  for (const Phase& phase : timeline) {
    const dut::core::Distribution mu =
        phase.hotspot_share == 0.0
            ? dut::core::uniform(config.domain)
            : dut::core::heavy_hitter(config.domain, phase.hotspot_share);
    const dut::core::AliasSampler sampler(mu);
    for (int e = 0; e < phase.epochs; ++e) {
      for (std::uint64_t i = 0; i < monitor.window_size(); ++i) {
        for (std::uint32_t node = 0; node < config.nodes; ++node) {
          monitor.observe(node, sampler.sample(rng));
        }
      }
      const auto report = monitor.next_report();
      table.row()
          .add(report.epoch)
          .add(phase.label)
          .add(report.votes_to_reject)
          .add(report.distance_score, 3)
          .add(report.alarm ? "ALARM" : "-");
    }
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\n%llu alarms over %llu epochs. The score column grades the\n"
              "deviation (sqrt(chi_hat*n - 1)): the 1%% hotspot already\n"
              "scores ~1.3 because collisions weight heavy elements\n"
              "quadratically — the same sensitivity the alarm rides on.\n",
              static_cast<unsigned long long>(monitor.alarms_raised()),
              static_cast<unsigned long long>(monitor.epochs_completed()));
  return 0;
}
