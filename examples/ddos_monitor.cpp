// DoS detection — the paper's opening motivation.
//
// A fleet of routers samples destination addresses from the traffic they
// forward. Under normal operation destinations are spread (here: uniform
// over n flows after hashing); during a denial-of-service attack a single
// destination soaks up an abnormal share of the traffic. No router sees
// enough packets to decide alone and the routers cannot talk to each other
// on the data path — exactly the 0-round model.
//
// This example sweeps the attack intensity (the victim's traffic share) and
// reports the network's detection rate under the threshold rule, showing
// the detection cliff where the skew crosses the planned distance eps.

#include <cstdio>
#include <sstream>
#include <vector>

#include "dut/core/families.hpp"
#include "dut/core/zero_round.hpp"
#include "dut/stats/summary.hpp"
#include "dut/stats/table.hpp"

int main() {
  const std::uint64_t n = 1 << 14;  // hashed flow buckets
  const std::uint64_t k = 4096;     // routers
  const double eps = 0.9;           // alarm threshold in L1 distance
  const std::uint64_t trials = 60;

  const dut::core::ThresholdPlan plan = dut::core::plan_threshold(
      n, k, eps, 1.0 / 3.0, dut::core::TailBound::kExactBinomial);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }

  std::printf("DoS monitor: %llu routers, %llu sampled packets each, alarm "
              "when >= %llu routers flag their sample window\n\n",
              static_cast<unsigned long long>(k),
              static_cast<unsigned long long>(plan.base.s),
              static_cast<unsigned long long>(plan.threshold));

  // The guarantee is one-sided: alarms are rare under normal traffic and
  // near-certain once L1 distance reaches eps. For a *heavy-hitter* attack
  // the collision statistic chi jumps to ~share^2, so detection in practice
  // kicks in much earlier — the sweep below charts that cliff. The
  // "chi ratio" column is chi(mu)/chi(U): the paper's Lemma 3.2 guarantees
  // detection once it exceeds 1 + eps^2.
  dut::stats::TextTable table({"victim share", "L1 distance", "chi ratio",
                               "guaranteed?", "alarm rate"});
  for (const double share :
       {0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.2, 0.55}) {
    const dut::core::Distribution traffic =
        share == 0.0 ? dut::core::uniform(n)
                     : dut::core::heavy_hitter(n, share);
    const double distance = traffic.l1_to_uniform();
    const double chi_ratio = traffic.collision_probability() *
                             static_cast<double>(n);
    const dut::core::AliasSampler sampler(traffic);
    const auto alarm = dut::stats::estimate_probability(
        1000 + static_cast<std::uint64_t>(share * 1000), trials,
        [&](dut::stats::Xoshiro256& rng) {
          return dut::core::run_threshold_network(plan, sampler, rng)
              .rejects();
        });
    table.row()
        .add(share, 3)
        .add(distance, 3)
        .add(chi_ratio, 3)
        .add(distance >= eps ? "yes (eps-far)" : share == 0.0 ? "quiet" : "-")
        .add(alarm.p_hat, 3);
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\nThe theorem guarantees the endpoints (quiet traffic < 1/3 "
              "alarms, eps-far traffic > 2/3); the collision statistic "
              "flags this attack shape as soon as the victim's share "
              "crosses ~sqrt(delta * chi(U)) ~ 1%%.\n");
  return 0;
}
