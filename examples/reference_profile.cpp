// Identity testing against a known reference profile (paper introduction).
//
// A CDN knows its normal request-popularity profile q (a Zipf law measured
// last month). Edge caches sample live requests and the fleet must raise an
// alarm if today's distribution mu drifts eps-far from q. The paper's
// observation: the Goldreich filter reduces this to *uniformity* testing —
// and crucially, the filter needs only each node's PRIVATE randomness, so
// it composes with any distributed uniformity tester unchanged.
//
// Pipeline per node: sample -> IdentityFilter::apply -> single-collision
// tester on the filtered domain; network decision by threshold rule.

#include <cstdio>
#include <sstream>
#include <vector>

#include "dut/core/families.hpp"
#include "dut/core/identity_filter.hpp"
#include "dut/core/zero_round.hpp"
#include "dut/stats/summary.hpp"
#include "dut/stats/table.hpp"

namespace {

/// Runs one network trial: every node filters its own samples and applies
/// the planned collision tester on the filtered (grain) domain.
bool network_rejects(const dut::core::ThresholdPlan& plan,
                     const dut::core::IdentityFilter& filter,
                     const dut::core::AliasSampler& raw_sampler,
                     dut::stats::Xoshiro256& rng) {
  const dut::core::SingleCollisionTester tester(plan.base);
  std::uint64_t rejects = 0;
  std::vector<std::uint64_t> grains(plan.base.s);
  for (std::uint64_t node = 0; node < plan.k; ++node) {
    for (std::uint64_t i = 0; i < plan.base.s; ++i) {
      grains[i] = filter.apply(raw_sampler.sample(rng), rng);
    }
    if (!tester.accept(grains)) ++rejects;
  }
  return rejects >= plan.threshold;
}

}  // namespace

int main() {
  // The filter halves the distance (output eps' ~ eps/2) and the threshold
  // tester's constants want eps' >= ~0.8 at these network sizes, so the
  // alarm distance is set generously (a profile that "fully changes shape").
  const std::uint64_t n = 256;    // content catalog
  const std::uint64_t k = 8192;   // edge caches
  const double eps = 1.6;         // drift alarm distance

  const dut::core::Distribution reference = dut::core::zipf(n, 1.0);
  const dut::core::IdentityFilter filter(reference, eps, 32.0);
  std::printf("reference profile: zipf(%llu, 1.0); filter maps samples into "
              "%llu grains; testing uniformity at eps' = %.3f\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(filter.output_domain()),
              filter.output_epsilon());

  const dut::core::ThresholdPlan plan = dut::core::plan_threshold(
      filter.output_domain(), k, filter.output_epsilon(), 1.0 / 3.0,
      dut::core::TailBound::kExactBinomial);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  std::printf("each cache samples %llu requests; alarm at %llu of %llu "
              "caches\n\n",
              static_cast<unsigned long long>(plan.base.s),
              static_cast<unsigned long long>(plan.threshold),
              static_cast<unsigned long long>(k));

  struct Scenario {
    const char* name;
    dut::core::Distribution live;
  };
  // A flash crowd on the *least* popular item moves the farthest from a
  // Zipf reference (mass leaves the whole head).
  std::vector<double> crowd_weights(n, 0.03 / static_cast<double>(n - 1));
  crowd_weights[n - 1] = 0.97;
  const Scenario scenarios[] = {
      {"normal day (mu = q)", dut::core::zipf(n, 1.0)},
      {"flash crowd on a tail item",
       dut::core::Distribution::from_weights(std::move(crowd_weights))},
      {"catalog collapsed to 16 items",
       dut::core::restricted_support(n, n / 16)},
      {"mild drift (zipf exponent 1.2)", dut::core::zipf(n, 1.2)},
  };

  dut::stats::TextTable table(
      {"scenario", "L1(mu, q)", "expected", "alarm rate"});
  std::uint64_t seed = 100;
  for (const Scenario& s : scenarios) {
    const double distance = s.live.l1_distance(reference);
    const dut::core::AliasSampler sampler(s.live);
    const auto alarm = dut::stats::estimate_probability(
        seed += 17, 60, [&](dut::stats::Xoshiro256& rng) {
          return network_rejects(plan, filter, sampler, rng);
        });
    table.row()
        .add(s.name)
        .add(distance, 3)
        .add(distance >= eps ? "alarm" : distance == 0.0 ? "quiet" : "n/a")
        .add(alarm.p_hat, 3);
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nGuarantees: quiet days alarm with probability <= 1/3, "
              ">= eps-far days with probability >= 2/3. Rows marked n/a "
              "carry no guarantee (the tester may or may not alarm).\n");
  return 0;
}
