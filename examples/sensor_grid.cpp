// Sensor grid on CONGEST — the paper's second motivating scenario.
//
// A 64x64 grid of temperature sensors monitors a plant. Each reading is
// quantized into one of n bins; a calibrated plant produces (by design of
// the quantizer) uniformly distributed bin indices, while a systematic
// fault (stuck sensors, drift) skews the histogram. Each sensor holds ONE
// sample and the grid must decide jointly over its low-bandwidth links —
// the CONGEST model of Theorem 1.4.
//
// The run reports the full protocol pipeline: leader election + BFS tree,
// token packaging into tau-sized "virtual nodes", per-package collision
// tests, threshold aggregation — plus the round/bit accounting that makes
// the O(D + n/(k eps^4)) bound concrete.

#include <cstdio>
#include <sstream>

#include "dut/congest/uniformity.hpp"
#include "dut/core/families.hpp"
#include "dut/stats/table.hpp"

int main() {
  const std::uint64_t n = 1 << 12;  // quantization bins
  const std::uint32_t rows = 64;
  const std::uint32_t cols = 64;
  const std::uint32_t k = rows * cols;
  const double eps = 1.2;

  const dut::net::Graph grid = dut::net::Graph::grid(rows, cols);
  const dut::congest::CongestPlan plan =
      dut::congest::plan_congest(n, k, eps);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }

  std::printf("sensor grid %ux%u (diameter %u), one sample per sensor\n",
              rows, cols, grid.diameter());
  std::printf("plan: packages of tau = %llu samples -> %llu virtual nodes, "
              "alarm at %llu rejecting packages, %llu-bit messages\n\n",
              static_cast<unsigned long long>(plan.tau),
              static_cast<unsigned long long>(plan.num_packages),
              static_cast<unsigned long long>(plan.threshold),
              static_cast<unsigned long long>(plan.bandwidth_bits));

  dut::net::ProtocolDriver driver =
      dut::congest::make_congest_driver(plan, grid);

  struct Scenario {
    const char* name;
    dut::core::Distribution readings;
  };
  const Scenario scenarios[] = {
      {"calibrated plant (uniform bins)", dut::core::uniform(n)},
      {"sensor drift (eps-far)", dut::core::far_instance(n, eps)},
      {"bank of stuck sensors (25% of bins)",
       dut::core::restricted_support(n, n / 4)},
  };

  dut::stats::TextTable table({"scenario", "alarms (of 20 runs)",
                               "rejecting packages (last run)", "rounds",
                               "total KB on wire"});
  for (const Scenario& s : scenarios) {
    const dut::core::AliasSampler sampler(s.readings);
    int alarms = 0;
    dut::congest::CongestRunResult last;
    for (std::uint64_t t = 0; t < 20; ++t) {
      last = dut::congest::run_congest_uniformity(plan, driver, sampler,
                                                  7000 + t);
      if (last.verdict.rejects()) ++alarms;
    }
    table.row()
        .add(s.name)
        .add(static_cast<std::uint64_t>(alarms))
        .add(last.verdict.votes_reject)
        .add(last.metrics.rounds)
        .add(static_cast<double>(last.metrics.total_bits) / 8192.0, 4);
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\nRounds stay near 4*D + tau = %u despite the 4096-node "
              "grid: packaging pipelines tokens up the BFS tree.\n",
              4 * grid.diameter() + static_cast<unsigned>(plan.tau));
  return 0;
}
