// Heterogeneous sampling costs (paper Section 4).
//
// A mixed fleet monitors the same stream: mains-powered gateways sample
// cheaply, battery-powered edge sensors pay 8x more energy per sample, and
// a few solar stragglers pay 32x. The asymmetric planner splits the
// rejection "responsibility" in proportion to T_i^2 = 1/c_i^2, so cheap
// nodes draw most of the samples and the *maximum individual energy bill*
// drops to ~sqrt(2 n A)/||T||_2 — far below what a symmetric assignment
// would charge the stragglers.

#include <cstdio>
#include <sstream>
#include <vector>

#include "dut/core/asymmetric.hpp"
#include "dut/core/families.hpp"
#include "dut/stats/summary.hpp"
#include "dut/stats/table.hpp"

int main() {
  const std::uint64_t n = 1 << 14;
  const double eps = 1.2;

  // 4096 gateways (cost 1), 2048 battery sensors (cost 8), 512 solar (32).
  std::vector<double> costs;
  for (int i = 0; i < 4096; ++i) costs.push_back(1.0);
  for (int i = 0; i < 2048; ++i) costs.push_back(8.0);
  for (int i = 0; i < 512; ++i) costs.push_back(32.0);
  const std::uint64_t k = costs.size();

  const auto plan = dut::core::plan_asymmetric_threshold(n, costs, eps);
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }

  dut::stats::TextTable table(
      {"tier", "cost/sample", "samples drawn", "energy bill"});
  const struct {
    const char* name;
    std::size_t index;
  } tiers[] = {{"gateway", 0}, {"battery", 4096}, {"solar", 4096 + 2048}};
  for (const auto& tier : tiers) {
    const auto s = plan.node_params[tier.index].s;
    table.row()
        .add(tier.name)
        .add(costs[tier.index], 3)
        .add(static_cast<std::uint64_t>(s))
        .add(static_cast<double>(s) * costs[tier.index], 4);
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  // What would the symmetric tester charge? Everyone draws the same count,
  // so the solar nodes pay sample_count * 32.
  const auto symmetric = dut::core::plan_threshold(n, k, eps);
  const double symmetric_worst =
      symmetric.feasible
          ? static_cast<double>(symmetric.base.s) * 32.0
          : 0.0;
  std::printf("\nmax individual bill: %.1f (asymmetric plan) vs %.1f "
              "(symmetric assignment), predicted sqrt(2nA)/||T||_2 = %.1f\n",
              plan.max_cost, symmetric_worst, plan.predicted_max_cost);

  // And it still tests correctly.
  const dut::core::AliasSampler uniform(dut::core::uniform(n));
  const dut::core::AliasSampler far(dut::core::far_instance(n, eps));
  const auto false_alarm = dut::stats::estimate_probability(
      1, 60, [&](dut::stats::Xoshiro256& rng) {
        return dut::core::run_asymmetric_threshold_network(plan, uniform, rng)
            .rejects();
      });
  const auto detection = dut::stats::estimate_probability(
      2, 60, [&](dut::stats::Xoshiro256& rng) {
        return dut::core::run_asymmetric_threshold_network(plan, far, rng)
            .rejects();
      });
  std::printf("false-alarm rate %.2f, detection rate %.2f "
              "(targets: < 0.33, > 0.67)\n",
              false_alarm.p_hat, detection.p_hat);
  return 0;
}
